"""Dependency-driven pipelined dispatch across layers, images and requests.

The layer-synchronous :class:`~repro.runtime.scheduler.Scheduler` fans out
all tiles of layer L, waits at a barrier, then moves to layer L+1 - which
leaves most APs of a weight-resident deployment idle at any instant (every
layer owns a *disjoint* AP group, but only one group works at a time).  This
module replaces the barrier chain with a work-item DAG:

* a :class:`PipelineTask` is one dispatchable unit of work (one tile program
  of one layer - for inference, of one image of one request) with explicit
  dependencies on other tasks' keys;
* :class:`PipelineScheduler` keeps a **topological frontier**: every task
  whose dependencies have completed is submitted to the executor the moment
  a slot frees up, so layer L+1 tiles run on their own resident AP group
  while layer L tiles of other work are still in flight;
* an :class:`InFlightTracker` counts in-flight work per AP group (one group
  per resident layer) with an optional concurrency cap - the hardware-
  faithful mode serializes each stage, the throughput mode merely tracks
  occupancy for reports.

Executors gained an async ``submit_tasks``/``drain`` interface beside their
order-preserving ``map_tasks`` (see :mod:`repro.runtime.executors`); the
pipeline uses it so tiles of *different* layers interleave freely on one
worker pool.

Determinism guarantee
---------------------
A tile's result depends only on the tile itself (executor contract), every
counter reduction is performed in a *sorted, dispatch-order-independent*
order at aggregation time, and interconnect movement is charged per layer in
plan order after all tiles complete - so a pipelined run produces
byte-identical :class:`~repro.runtime.scheduler.PlanExecution` counters to
the layer-synchronous scheduler, no matter in which order tasks finished.
"""

from __future__ import annotations

import heapq
import queue
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.errors import ConfigurationError, SimulationError
from repro.runtime.executors import LeaseFn, _pool_worker
from repro.runtime.plan import ExecutionPlan
from repro.runtime.scheduler import (
    PlanExecution,
    Scheduler,
    aggregate_layer_run,
    charge_adder_tree_movement,
)


@dataclass(frozen=True)
class PipelineTask:
    """One dispatchable work item of the pipeline DAG.

    Attributes:
        key: unique, orderable identity (ties in the ready frontier are
            broken by sorting keys, which keeps submission order - and
            therefore serial execution - deterministic).
        group: the AP group the task occupies while in flight (a resident
            layer's disjoint address range; tracked by
            :class:`InFlightTracker`).
        fn: picklable worker invoked with ``payload`` on the executor.
        payload: the worker's single argument.
        depends_on: keys that must complete before this task is dispatchable.
    """

    key: Tuple
    group: Hashable
    fn: Callable
    payload: Any
    depends_on: Tuple = ()


@dataclass
class GroupTrace:
    """Occupancy record of one AP group (one pipeline stage)."""

    group: Hashable
    #: Total tasks dispatched through the group.
    dispatches: int = 0
    #: Tasks currently in flight.
    in_flight: int = 0
    #: High-water mark of concurrent in-flight tasks (pipeline overlap
    #: witness: > 0 on more than one group at once means stages overlapped).
    max_in_flight: int = 0


class InFlightTracker:
    """Per-AP-group in-flight accounting with an optional concurrency cap.

    Args:
        max_in_flight: maximum concurrent work items per group.  ``None``
            (default) only *tracks* occupancy; ``1`` reproduces the
            hardware-faithful semantics where a stage serves one activation
            stream at a time.
    """

    def __init__(self, max_in_flight: Optional[int] = None) -> None:
        if max_in_flight is not None and max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be >= 1 (or None), got {max_in_flight}"
            )
        self.max_in_flight = max_in_flight
        self._condition = threading.Condition()
        self._groups: Dict[Hashable, GroupTrace] = {}

    # ------------------------------------------------------------------
    def _trace(self, group: Hashable) -> GroupTrace:
        trace = self._groups.get(group)
        if trace is None:
            trace = self._groups[group] = GroupTrace(group=group)
        return trace

    def try_enter(self, group: Hashable) -> bool:
        """Non-blocking entry; ``False`` when the group is at its cap."""
        with self._condition:
            trace = self._trace(group)
            if (
                self.max_in_flight is not None
                and trace.in_flight >= self.max_in_flight
            ):
                return False
            trace.in_flight += 1
            trace.dispatches += 1
            trace.max_in_flight = max(trace.max_in_flight, trace.in_flight)
            return True

    def enter(self, group: Hashable) -> None:
        """Blocking entry: waits until the group drops below its cap."""
        with self._condition:
            trace = self._trace(group)
            while (
                self.max_in_flight is not None
                and trace.in_flight >= self.max_in_flight
            ):
                self._condition.wait()
            trace.in_flight += 1
            trace.dispatches += 1
            trace.max_in_flight = max(trace.max_in_flight, trace.in_flight)

    def exit(self, group: Hashable) -> None:
        """Release one in-flight slot of ``group``."""
        with self._condition:
            trace = self._trace(group)
            if trace.in_flight < 1:
                raise SimulationError(
                    f"in-flight underflow on AP group {group!r}: exit() "
                    f"without a matching enter()"
                )
            trace.in_flight -= 1
            self._condition.notify_all()

    @contextmanager
    def entered(self, group: Hashable):
        """Context-managed ``enter``/``exit`` pair (exception-safe)."""
        self.enter(group)
        try:
            yield
        finally:
            self.exit(group)

    def trace(self) -> Dict[Hashable, GroupTrace]:
        """Snapshot of every group's occupancy counters."""
        with self._condition:
            return {
                group: GroupTrace(
                    group=trace.group,
                    dispatches=trace.dispatches,
                    in_flight=trace.in_flight,
                    max_in_flight=trace.max_in_flight,
                )
                for group, trace in self._groups.items()
            }

    @property
    def peak_concurrent_groups(self) -> int:
        """How many groups ever held in-flight work simultaneously is not
        tracked exactly; this returns the number of groups whose high-water
        mark is nonzero (a cheap overlap witness for reports)."""
        with self._condition:
            return sum(
                1 for trace in self._groups.values() if trace.max_in_flight > 0
            )


class PipelineScheduler(Scheduler):
    """Dependency-driven pipelined walk of an execution plan.

    A drop-in alternative to :class:`~repro.runtime.scheduler.Scheduler`
    whose :meth:`run` dispatches every tile program the moment its
    dependencies complete instead of walking the plan layer by layer.  Tiles
    sharing an AP are chained (an AP executes one tile program at a time -
    sequential rounds, and, for shared placement, layers that time-share
    addresses); everything else is frontier-parallel.  With a
    weight-resident plan every layer owns disjoint APs, so all layers'
    frontiers overlap - the software pipeline the resident placement exists
    for.

    Aggregated counters are byte-identical to the layer-synchronous
    scheduler's (see the module docstring).

    Args:
        accelerator: AP provider and ledger owner (shared with Scheduler).
        executor: executor name/class/instance (``serial`` executes each
            frontier wave inline, pools interleave waves).
        workers: worker count for pool executors.
        backend: functional AP backend; the accelerator's default if omitted.
        max_in_flight: per-AP-group concurrency cap (see
            :class:`InFlightTracker`).
    """

    def __init__(
        self,
        accelerator,
        executor="serial",
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        max_in_flight: Optional[int] = None,
    ) -> None:
        super().__init__(
            accelerator, executor=executor, workers=workers, backend=backend
        )
        self.tracker = InFlightTracker(max_in_flight)

    # ------------------------------------------------------------------
    def run(self, plan: ExecutionPlan) -> PlanExecution:
        """Execute ``plan`` with dependency-driven pipelined dispatch."""
        started = time.perf_counter()
        technology = self.accelerator.config.technology
        columns = plan.lease_columns

        tasks: List[PipelineTask] = []
        last_on_ap: Dict[tuple, Tuple] = {}
        for layer in plan.layers:
            for position, tile in enumerate(layer.tiles):
                key = (layer.layer_index, position)
                address = tuple(tile.address)
                dependency = last_on_ap.get(address)
                tasks.append(
                    PipelineTask(
                        key=key,
                        group=layer.layer_index,
                        fn=_pool_worker,
                        payload=(tile, position, columns, self.backend, technology),
                        depends_on=(dependency,) if dependency is not None else (),
                    )
                )
                last_on_ap[address] = key
        for layer in plan.layers:
            for tile in layer.tiles:
                # Residency accounting at dispatch time, exactly like the
                # layer-synchronous scheduler (pool workers build their APs
                # in other processes).
                self.accelerator.account_tile_dispatch(tile)

        with telemetry.span(
            "pipeline.run",
            tasks=len(tasks),
            executor=self.executor.name,
            backend=str(self.backend),
        ):
            results = self.run_graph(tasks)

        execution = PlanExecution(
            name=plan.name,
            executor=self.executor.name,
            backend=str(self.backend),
            workers=getattr(self.executor, "workers", 1),
            mode="pipelined",
        )
        for layer in plan.layers:
            tile_results = [
                results[(layer.layer_index, position)]
                for position in range(len(layer.tiles))
            ]
            movement = charge_adder_tree_movement(self.accelerator, layer)
            execution.layers.append(
                aggregate_layer_run(
                    layer,
                    [
                        (tile, result.stats, 0)
                        for tile, result in zip(layer.tiles, tile_results)
                    ],
                    self.accelerator,
                    movement,
                    checksum=sum(result.checksum for result in tile_results),
                    wall_time_s=sum(result.duration_s for result in tile_results),
                )
            )
        execution.wall_time_s = time.perf_counter() - started
        return execution

    # ------------------------------------------------------------------
    def run_graph(
        self,
        tasks: Sequence[PipelineTask],
        lease: Optional[LeaseFn] = None,
    ) -> Dict[Tuple, Any]:
        """Dispatch a task DAG through the executor's async interface.

        Maintains the topological frontier: a task is submitted as soon as
        every key in its ``depends_on`` has completed *and* its AP group is
        below the in-flight cap.  Ties are broken by sorted task key, so
        serial execution order is deterministic.

        Returns:
            ``{task.key: result}`` for every task.

        Raises:
            ConfigurationError: on duplicate keys or dependencies on unknown
                keys.
            SimulationError: if the graph contains a dependency cycle.
        """
        by_key: Dict[Tuple, PipelineTask] = {}
        for task in tasks:
            if task.key in by_key:
                raise ConfigurationError(f"duplicate pipeline task key {task.key!r}")
            by_key[task.key] = task
        dependents: Dict[Tuple, List[PipelineTask]] = {}
        blockers: Dict[Tuple, int] = {}
        for task in by_key.values():
            count = 0
            for dependency in task.depends_on:
                if dependency not in by_key:
                    raise ConfigurationError(
                        f"pipeline task {task.key!r} depends on unknown key "
                        f"{dependency!r}"
                    )
                dependents.setdefault(dependency, []).append(task)
                count += 1
            blockers[task.key] = count

        ready: List[Tuple] = []  # heap of dispatchable task keys
        for task in by_key.values():
            if blockers[task.key] == 0:
                heapq.heappush(ready, task.key)
        deferred: Dict[Hashable, List[Tuple]] = {}  # group -> keys at cap
        results: Dict[Tuple, Any] = {}
        first_error: Optional[BaseException] = None
        # Completed (task, future) pairs arrive through one queue fed by
        # done-callbacks, so reaping a completion is O(1) however many tasks
        # are in flight (no re-registration of waiters per wave).
        completions: "queue.SimpleQueue" = queue.SimpleQueue()
        in_flight = 0

        def submit_frontier() -> int:
            submitted = 0
            blocked: List[Tuple] = []
            while ready:
                key = heapq.heappop(ready)
                task = by_key[key]
                if not self.tracker.try_enter(task.group):
                    blocked.append(key)
                    continue
                telemetry.instant(
                    "pipeline.frontier_pop",
                    group=str(task.group),
                    key=str(task.key),
                )
                futures = self.executor.submit_tasks(
                    task.fn, [task.payload], lease=lease
                )
                submitted += 1
                futures[0].add_done_callback(
                    lambda future, task=task: completions.put((task, future))
                )
            for key in blocked:
                deferred.setdefault(by_key[key].group, []).append(key)
            return submitted

        try:
            in_flight += submit_frontier()
            while in_flight:
                task, future = completions.get()
                in_flight -= 1
                self.tracker.exit(task.group)
                # A freed slot may unblock tasks deferred at this group's cap.
                waiting = deferred.pop(task.group, None)
                if waiting:
                    for key in waiting:
                        heapq.heappush(ready, key)
                try:
                    results[task.key] = future.result()
                except BaseException as error:  # noqa: BLE001 - re-raised
                    if first_error is None:
                        first_error = error
                else:
                    for dependent in dependents.get(task.key, ()):
                        blockers[dependent.key] -= 1
                        if blockers[dependent.key] == 0 and first_error is None:
                            heapq.heappush(ready, dependent.key)
                if first_error is None:
                    in_flight += submit_frontier()
        finally:
            # Exception safety: never leave workers running against a
            # half-aggregated run.
            while in_flight:
                task, _ = completions.get()
                in_flight -= 1
                self.tracker.exit(task.group)
        if first_error is not None:
            raise first_error
        if len(results) != len(by_key):
            unreached = sorted(set(by_key) - set(results))
            raise SimulationError(
                f"pipeline task graph contains a dependency cycle; "
                f"unreachable keys: {unreached[:8]}"
            )
        return results
