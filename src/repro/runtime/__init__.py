"""Unified execution-plan runtime: scheduler + parallel functional simulation.

This package turns the repo's compile -> allocate -> execute stages into one
explicit pipeline:

1. :func:`~repro.runtime.plan.build_execution_plan` joins a
   :class:`~repro.core.compiler.CompiledModel` (``emit_programs=True``) with
   an :class:`~repro.arch.allocator.AllocationPlan` into per-AP
   :class:`~repro.runtime.plan.TileProgram` objects addressed by
   ``(bank, tile, ap)``.
2. A :class:`~repro.runtime.scheduler.Scheduler` walks the plan layer by
   layer and dispatches each layer's tiles to a pluggable executor
   (``serial`` / ``parallel`` process pool / ``thread`` pool).
3. Per-tile :class:`~repro.cam.stats.CAMStats` are reduced with
   order-independent reductions, so parallel output is byte-identical to
   serial output, and interconnect traffic is charged through the
   accelerator's :class:`~repro.arch.interconnect.InterconnectModel`.

The usual entry point is
:meth:`repro.arch.accelerator.Accelerator.execute_plan`; the helper
:func:`execute_model` below goes from layer specs to a
:class:`~repro.runtime.scheduler.PlanExecution` in one call (this is what
``python -m repro run`` uses).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.runtime.executors import (
    Executor,
    ExecutorSpec,
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
    TileResult,
    available_executors,
    resolve_executor,
)
from repro.runtime.pipeline import (
    GroupTrace,
    InFlightTracker,
    PipelineScheduler,
    PipelineTask,
)
from repro.runtime.plan import (
    ExecutionPlan,
    PlannedLayer,
    TileProgram,
    build_execution_plan,
    derive_tile_seed,
    resident_aps_required,
)
from repro.runtime.scheduler import LayerRunResult, PlanExecution, Scheduler


def execute_model(
    specs: Sequence,
    accelerator=None,
    compiler_config=None,
    executor: ExecutorSpec = "serial",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    base_seed: int = 0,
    name: str = "model",
) -> PlanExecution:
    """Compile, plan and functionally execute a model in one call.

    Thin convenience wrapper over ``compile_model(emit_programs=True)`` +
    :func:`build_execution_plan` +
    :meth:`~repro.arch.accelerator.Accelerator.execute_plan`.
    """
    from repro.arch.accelerator import Accelerator
    from repro.core.compiler import compile_model

    accelerator = accelerator or Accelerator()
    compiled = compile_model(specs, compiler_config, name=name, emit_programs=True)
    plan = build_execution_plan(compiled, accelerator=accelerator, base_seed=base_seed)
    return accelerator.execute_plan(
        plan, executor=executor, workers=workers, backend=backend
    )


__all__ = [
    "Executor",
    "ExecutorSpec",
    "SerialExecutor",
    "ParallelExecutor",
    "ThreadExecutor",
    "TileResult",
    "available_executors",
    "resolve_executor",
    "ExecutionPlan",
    "PlannedLayer",
    "TileProgram",
    "build_execution_plan",
    "derive_tile_seed",
    "resident_aps_required",
    "LayerRunResult",
    "PlanExecution",
    "Scheduler",
    "GroupTrace",
    "InFlightTracker",
    "PipelineScheduler",
    "PipelineTask",
    "execute_model",
]
