"""The runtime scheduler: walks an execution plan layer by layer.

The :class:`Scheduler` dispatches each layer's tile programs to a pluggable
executor (:mod:`repro.runtime.executors`), reduces the per-tile
:class:`~repro.cam.stats.CAMStats` with order-independent reductions (integer
sums and per-round maxima), and charges interconnect traffic for the
inter-AP adder-tree merges through the accelerator's
:class:`~repro.arch.interconnect.InterconnectModel`.  The aggregated result,
:class:`PlanExecution`, is shaped like
:class:`~repro.perf.model.ModelPerformance` (same energy/latency/ops surface)
so the *functional* runtime numbers can be compared against the *analytic*
model at layer granularity (see
:func:`repro.perf.model.crosscheck_execution`).

Determinism guarantee
---------------------
Per-tile inputs derive from per-tile seeds, per-tile counters are exact
integers, and every reduction used here (integer sum, per-round maximum) is
order-independent - so ``serial`` and ``parallel`` execution of the same plan
produce byte-identical aggregated counters, as do the ``reference`` and
``vectorized`` backends (whose per-instruction equivalence is enforced by the
backend test suite).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro import telemetry
from repro.cam.stats import CAMStats
from repro.errors import ConfigurationError
from repro.perf.breakdown import EnergyBreakdown, LatencyBreakdown
from repro.runtime.executors import ExecutorSpec, resolve_executor
from repro.runtime.plan import ExecutionPlan, PlannedLayer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.arch.accelerator import Accelerator


@dataclass
class LayerRunResult:
    """Aggregated functional result of one layer of a plan."""

    name: str
    layer_index: int
    #: Exact, order-independent sum of the layer's tile counters.
    stats: CAMStats
    energy: EnergyBreakdown
    latency: LatencyBreakdown
    #: Add/sub instructions actually executed across the layer's tiles.
    total_ops: int
    #: Tiles executed / distinct APs occupied / sequential rounds.
    tiles_executed: int = 0
    aps_used: int = 0
    rounds: int = 1
    #: Order-independent checksum over every tile output (executor/backend
    #: equivalence witness).
    checksum: int = 0
    #: Statistics scale factor inherited from slice sampling (1.0 = exact).
    scale_factor: float = 1.0
    #: Host wall-clock spent executing the layer's tiles.
    wall_time_s: float = 0.0

    @property
    def energy_uj(self) -> float:
        """Layer energy in microjoules."""
        return self.energy.total_uj

    @property
    def latency_ms(self) -> float:
        """Layer latency in milliseconds."""
        return self.latency.total_ms


@dataclass
class PlanExecution:
    """Aggregated functional counters of a whole plan run.

    Mirrors the surface of :class:`~repro.perf.model.ModelPerformance`
    (``energy``, ``latency``, ``energy_uj``, ``latency_ms``, ``total_ops``,
    ``arrays_used``, ``movement_fraction``, ``layer_by_name``) so analytic
    and functional results can be tabulated side by side.
    """

    name: str
    executor: str
    backend: str
    workers: int
    layers: List[LayerRunResult] = field(default_factory=list)
    wall_time_s: float = 0.0
    #: Dispatch discipline that produced the run: ``"layer-sync"`` (barrier
    #: per layer) or ``"pipelined"`` (dependency-driven, see
    #: :mod:`repro.runtime.pipeline`).  Counters are byte-identical across
    #: the two; only wall-clock differs.
    mode: str = "layer-sync"

    @property
    def total_stats(self) -> CAMStats:
        """Element-wise sum of every layer's exact counters."""
        total = CAMStats()
        for layer in self.layers:
            total = total.merge(layer.stats)
        return total

    @property
    def energy(self) -> EnergyBreakdown:
        """Total energy breakdown."""
        total = EnergyBreakdown()
        for layer in self.layers:
            total = total.merge(layer.energy)
        return total

    @property
    def latency(self) -> LatencyBreakdown:
        """Total latency breakdown."""
        total = LatencyBreakdown()
        for layer in self.layers:
            total = total.merge(layer.latency)
        return total

    @property
    def energy_uj(self) -> float:
        """Functional energy of the run in microjoules."""
        return self.energy.total_uj

    @property
    def latency_ms(self) -> float:
        """Functional latency of the run in milliseconds."""
        return self.latency.total_ms

    @property
    def total_ops(self) -> int:
        """Add/sub instructions executed across the plan."""
        return sum(layer.total_ops for layer in self.layers)

    @property
    def arrays_used(self) -> int:
        """Peak number of distinct APs any layer occupied."""
        return max((layer.aps_used for layer in self.layers), default=0)

    @property
    def movement_fraction(self) -> float:
        """Fraction of functional energy spent moving data."""
        return self.energy.movement_fraction

    @property
    def checksum(self) -> int:
        """Order-independent checksum across every executed tile."""
        return sum(layer.checksum for layer in self.layers)

    def layer_by_name(self, name: str) -> LayerRunResult:
        """Look up a layer's functional result."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise ConfigurationError(f"no layer named {name!r} in plan execution")


def aggregate_layer_run(
    layer: PlannedLayer,
    tile_stats,
    accelerator: "Accelerator",
    movement,
    repeats: int = 1,
    checksum: int = 0,
    wall_time_s: float = 0.0,
) -> LayerRunResult:
    """Reduce executed tiles' counters into one :class:`LayerRunResult`.

    The single accounting epilogue shared by the synthetic-input
    :class:`Scheduler` and the real-activation inference engine
    (:mod:`repro.inference.engine`), so energy/latency formulas cannot drift
    between ``repro run`` and ``repro infer``.

    Args:
        layer: the planned layer the tiles belong to.
        tile_stats: iterable of ``(tile, stats, stream)`` triples - one per
            executed tile, where ``stream`` keys the latency overlap group
            (tiles of the same stream and round overlap; the synthetic path
            uses a single stream, batched inference one stream per image).
        accelerator: ledgers owner; every tile's counters are charged to its
            ``(bank, tile)``.
        movement: :class:`~repro.arch.interconnect.TransferCost` already
            charged for the layer (adder-tree merges, activation hand-off).
        repeats: how many times the layer's static instruction stream ran
            (1 for the synthetic path, one per image for batched inference) -
            scales the controller/instruction-cache energy and the op count.
        checksum: order-independent output checksum across the tiles.
        wall_time_s: host wall-clock spent executing the tiles.
    """
    technology = accelerator.config.technology
    stats = CAMStats()
    round_latency: Dict[tuple, float] = {}
    executed = 0
    for tile, tile_counters, stream in tile_stats:
        executed += 1
        stats = stats.merge(tile_counters)
        accelerator.record_tile_stats(tile.address, tile_counters)
        key = (stream, tile.round_index)
        tile_latency = tile_counters.latency_ns(technology)
        round_latency[key] = max(round_latency.get(key, 0.0), tile_latency)

    # Per-layer latency: concurrent tiles of one (stream, round) overlap
    # (their maximum); sequential rounds and streams add up.
    dfg_ns = sum(round_latency.values())

    # Controller / instruction-cache overhead per issued instruction.
    peripherals_fj = (
        layer.num_instructions
        * repeats
        * accelerator.config.instruction_cache_energy_fj
    )
    energy = EnergyBreakdown(
        dfg_fj=stats.energy_fj(technology),
        peripherals_fj=peripherals_fj,
        movement_fj=movement.energy_fj,
    )
    latency = LatencyBreakdown(dfg_ns=dfg_ns, movement_ns=movement.latency_ns)
    return LayerRunResult(
        name=layer.name,
        layer_index=layer.layer_index,
        stats=stats,
        energy=energy,
        latency=latency,
        total_ops=repeats * sum(tile.num_arithmetic_ops for tile in layer.tiles),
        tiles_executed=executed,
        aps_used=layer.aps_used,
        rounds=layer.num_rounds,
        checksum=checksum,
        scale_factor=layer.scale_factor,
        wall_time_s=wall_time_s,
    )


def charge_adder_tree_movement(accelerator, layer: PlannedLayer, repeats: int = 1):
    """Charge the partial-sum merges between a layer's channel groups.

    Every channel group beyond the first must ship its per-row partial sums
    (one accumulator per output channel) to the group-0 AP of the same row
    tile; the hierarchy level crossed determines the per-bit energy.  Groups
    that sequential rounds place on the *same* AP merge in place (the
    accumulator column is simply extended next round) and move nothing.
    Charged through the accelerator so the traffic shows up in its
    interconnect ledger.  ``repeats`` scales the traffic for batched
    execution (one merge pass per image; the transfer model is linear in
    bits).
    """
    from repro.arch.interconnect import ZERO_TRANSFER

    total = ZERO_TRANSFER
    tiles_by_row: Dict[int, List] = {}
    for tile in layer.tiles:
        tiles_by_row.setdefault(tile.row_tile, []).append(tile)
    for row_tiles in tiles_by_row.values():
        groups = sorted(row_tiles, key=lambda tile: tile.channel_group)
        first = groups[0]
        for tile in groups[1:]:
            if tile.address == first.address:
                continue
            bits = float(
                layer.out_channels * tile.rows * layer.accumulator_width * repeats
            )
            scope = accelerator.transfer_scope(tile.address, first.address)
            total = total.merge(accelerator.charge_movement(bits, scope))
    return total


class Scheduler:
    """Walks an :class:`~repro.runtime.plan.ExecutionPlan` layer by layer.

    Args:
        accelerator: AP provider and interconnect owner.  Tile counters and
            movement costs are charged back into it (per-tile aggregation).
        executor: executor name (``serial``/``parallel``/``thread``), class or
            instance.
        workers: worker count for pool executors.
        backend: execution backend for the functional APs; defaults to the
            accelerator's backend.
    """

    def __init__(
        self,
        accelerator: "Accelerator",
        executor: ExecutorSpec = "serial",
        workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.accelerator = accelerator
        self.executor = resolve_executor(executor, workers=workers)
        self.backend = backend if backend is not None else accelerator.backend

    # ------------------------------------------------------------------
    def run(self, plan: ExecutionPlan) -> PlanExecution:
        """Execute every layer of ``plan`` and aggregate its counters."""
        started = time.perf_counter()
        execution = PlanExecution(
            name=plan.name,
            executor=self.executor.name,
            backend=str(self.backend),
            workers=getattr(self.executor, "workers", 1),
        )
        columns = plan.lease_columns
        for layer in plan.layers:
            execution.layers.append(self._run_layer(layer, columns))
        execution.wall_time_s = time.perf_counter() - started
        return execution

    # ------------------------------------------------------------------
    def _run_layer(self, layer: PlannedLayer, columns: int) -> LayerRunResult:
        technology = self.accelerator.config.technology
        for tile in layer.tiles:
            # Residency accounting happens at dispatch time (pool workers
            # build their APs in other processes): pinned tiles are warm,
            # everything else charges a lease + CAM reprogram.
            self.accelerator.account_tile_dispatch(tile)
        started = time.perf_counter()
        with telemetry.span(
            "scheduler.layer",
            layer=layer.name,
            tiles=len(layer.tiles),
            executor=self.executor.name,
            backend=str(self.backend),
        ):
            results = self.executor.run(
                layer.tiles,
                columns,
                backend=self.backend,
                technology=technology,
                accelerator=self.accelerator,
            )
        wall = time.perf_counter() - started

        movement = charge_adder_tree_movement(self.accelerator, layer)
        return aggregate_layer_run(
            layer,
            [(tile, result.stats, 0) for tile, result in zip(layer.tiles, results)],
            self.accelerator,
            movement,
            checksum=sum(result.checksum for result in results),
            wall_time_s=wall,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the executor's pooled workers (idempotent).

        Safe to call repeatedly and from ``finally`` blocks: the first call
        drains and shuts the executor down, later calls are no-ops, so a
        failed run can never leak a worker pool.
        """
        if getattr(self, "_closed", False):
            return
        self._closed = True
        self.executor.close()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
