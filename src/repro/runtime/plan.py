"""Execution plans: compiled programs joined with hardware placements.

An :class:`ExecutionPlan` is the hand-off object between the compile/allocate
stages and the runtime: it takes the per-slice AP programs of a
:class:`~repro.core.compiler.CompiledModel` (``emit_programs=True``) and the
per-layer placements of an :class:`~repro.arch.allocator.AllocationPlan`, and
materialises one :class:`TileProgram` per (row tile, channel group) pair -
the unit of work one AP executes - addressed by
:data:`~repro.arch.accelerator.APAddress`.

Determinism contract
--------------------
Every tile carries an ``input_seed`` derived only from the plan's ``base_seed``
and the tile's static coordinates (layer, row tile, channel group).  Input
vectors are generated inside the executor worker from that seed, so the same
plan produces byte-identical per-tile inputs - and therefore byte-identical
:class:`~repro.cam.stats.CAMStats` - no matter which executor runs it, in
which order, or on how many workers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Iterator, List, Optional, Tuple

from repro import telemetry
from repro.ap.isa import APProgram
from repro.arch.accelerator import Accelerator, APAddress
from repro.arch.allocator import AllocationPlan, LayerAllocation, allocate_model
from repro.arch.config import ArchitectureConfig
from repro.core.compiler import CompiledLayer, CompiledModel
from repro.errors import CapacityError, CompilationError

_SEED_MASK = (1 << 64) - 1
#: Golden-ratio increment of the splitmix64 sequence.
_SEED_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(value: int) -> int:
    """The splitmix64 finaliser: avalanches one 64-bit word."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _SEED_MASK
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _SEED_MASK
    return value ^ (value >> 31)


def derive_tile_seed(
    base_seed: int, layer_index: int, row_tile: int, channel_group: int
) -> int:
    """Deterministic per-tile input seed from the tile's static coordinates.

    Uses a splitmix64 chain so that nearby coordinates never collide and the
    per-tile input streams are statistically independent.
    """
    seed = _splitmix64((base_seed + _SEED_GAMMA) & _SEED_MASK)
    for coordinate in (layer_index, row_tile, channel_group):
        seed = _splitmix64((seed + _SEED_GAMMA + coordinate) & _SEED_MASK)
    return seed


@dataclass(frozen=True)
class TileProgram:
    """The work one AP performs for one (row tile, channel group) of a layer.

    Attributes:
        address: AP executing this tile, as ``(bank, tile, ap)``.
        layer_index: position of the layer in the plan.
        layer_name: compiled layer this tile belongs to.
        row_tile: which group of output positions the tile covers.
        channel_group: which input-channel group the tile covers.
        round_index: sequential round the tile runs in (0-based); tiles of the
            same layer and round execute concurrently on different APs.
        channel_indices: input channels whose slice programs the tile runs.
        programs: the compiled per-slice AP programs, executed in order on the
            same (pooled) AP.
        rows: active CAM rows (output positions) of this row tile.
        input_seed: seed of the deterministic per-tile input generator.
        activation_bits: precision of the generated input activations.
        signed_activations: whether generated activations carry a sign.
    """

    address: APAddress
    layer_index: int
    layer_name: str
    row_tile: int
    channel_group: int
    round_index: int
    channel_indices: Tuple[int, ...]
    programs: Tuple[APProgram, ...]
    rows: int
    input_seed: int
    activation_bits: int
    signed_activations: bool = False

    @property
    def num_instructions(self) -> int:
        """Instructions this tile executes."""
        return sum(len(program) for program in self.programs)

    @property
    def num_arithmetic_ops(self) -> int:
        """Add/sub instructions this tile executes (#Adds/Subs share)."""
        return sum(program.num_arithmetic_ops for program in self.programs)

    @cached_property
    def max_column_used(self) -> int:
        """Highest CAM column any of the tile's programs touches.

        Cached: tiles are frozen and built after compilation completes, and
        dispatch accounting queries this once per (image, tile) dispatch.
        """
        return max((program.max_column_used for program in self.programs), default=0)


@dataclass
class PlannedLayer:
    """One layer of an execution plan: placement plus its tile programs."""

    name: str
    layer_index: int
    allocation: LayerAllocation
    tiles: List[TileProgram] = field(default_factory=list)
    #: Output channels and accumulator width (sizing the adder-tree traffic).
    out_channels: int = 1
    accumulator_width: int = 8
    #: Output positions of the layer (all row tiles together).
    output_positions: int = 0
    #: Statistics scale factor inherited from slice sampling (1.0 = exact).
    scale_factor: float = 1.0

    @property
    def num_rounds(self) -> int:
        """Sequential rounds the layer needs."""
        return max((tile.round_index for tile in self.tiles), default=0) + 1

    @property
    def aps_used(self) -> int:
        """Distinct APs the layer occupies."""
        return len({tile.address for tile in self.tiles})

    @property
    def num_instructions(self) -> int:
        """Instructions executed across all tiles of the layer."""
        return sum(tile.num_instructions for tile in self.tiles)

    def tiles_by_round(self) -> Dict[int, List[TileProgram]]:
        """Group the layer's tiles by sequential round."""
        rounds: Dict[int, List[TileProgram]] = {}
        for tile in self.tiles:
            rounds.setdefault(tile.round_index, []).append(tile)
        return rounds


@dataclass
class ExecutionPlan:
    """A whole network lowered to per-AP tile programs.

    Built by :func:`build_execution_plan`; consumed by
    :class:`~repro.runtime.scheduler.Scheduler` /
    :meth:`~repro.arch.accelerator.Accelerator.execute_plan`.
    """

    name: str
    architecture: ArchitectureConfig
    allocation: AllocationPlan
    layers: List[PlannedLayer] = field(default_factory=list)
    base_seed: int = 0
    #: Address-assignment policy: ``"shared"`` rotates every layer through
    #: the same APs (cheap on capacity, reprograms weights per dispatch);
    #: ``"resident"`` gives each layer a disjoint address range so its
    #: weights can stay pinned in CAM across requests (see
    #: :meth:`repro.arch.accelerator.Accelerator.deploy_plan`).
    placement: str = "shared"

    def __iter__(self) -> Iterator[PlannedLayer]:
        return iter(self.layers)

    @property
    def num_tiles(self) -> int:
        """Tile programs across all layers."""
        return sum(len(layer.tiles) for layer in self.layers)

    @property
    def num_instructions(self) -> int:
        """Instructions executed across the whole plan."""
        return sum(layer.num_instructions for layer in self.layers)

    @property
    def aps_used(self) -> int:
        """Peak number of distinct APs any layer occupies."""
        return max((layer.aps_used for layer in self.layers), default=0)

    @property
    def required_columns(self) -> int:
        """CAM columns an AP needs to run any tile of the plan."""
        highest = max(
            (tile.max_column_used for layer in self.layers for tile in layer.tiles),
            default=0,
        )
        return highest + 1

    @property
    def lease_columns(self) -> int:
        """Column geometry every functional AP of this plan is leased with.

        The single source of the lease-width formula: the scheduler, the
        inference engine and :meth:`~repro.arch.accelerator.Accelerator.deploy_plan`
        must all size APs identically, or pinned (weight-resident) leases
        would be silently invalidated by a geometry mismatch.  The minimum
        of 4 keeps the carry/scratch columns usable on degenerate plans.
        """
        return max(self.required_columns, 4)

    def by_name(self) -> Dict[str, PlannedLayer]:
        """Index the planned layers by name."""
        return {layer.name: layer for layer in self.layers}

    def describe(self) -> str:
        """One-line summary used by the CLI and reports."""
        return (
            f"plan {self.name!r}: {len(self.layers)} layers, "
            f"{self.num_tiles} tile programs, {self.num_instructions} "
            f"instructions, peak {self.aps_used} APs"
        )


def _partition_slices(
    layer: CompiledLayer, channel_groups: int
) -> List[List[int]]:
    """Split the layer's compiled slice indices into contiguous channel groups.

    When slice sampling compiled fewer slices than there are channel groups,
    trailing groups come out empty and produce no tile program (their work is
    represented by the recorded scale factor instead).
    """
    count = len(layer.slices)
    groups: List[List[int]] = []
    base, remainder = divmod(count, channel_groups)
    start = 0
    for group in range(channel_groups):
        size = base + (1 if group < remainder else 0)
        groups.append(list(range(start, start + size)))
        start += size
    return groups


def resident_aps_required(compiled: CompiledModel) -> int:
    """APs a weight-resident placement needs at full channel parallelism.

    Upper bound used to auto-size an accelerator before a resident
    :func:`build_execution_plan`: every layer owns its row tiles times its
    channel groups simultaneously, because resident layers never time-share
    APs (an allocation computed against a larger budget can only need fewer).
    """
    return sum(
        layer.mapping.row_tiles * layer.mapping.channel_groups
        for layer in compiled.layers
    )


def build_execution_plan(
    compiled: CompiledModel,
    accelerator: Optional[Accelerator] = None,
    allocation: Optional[AllocationPlan] = None,
    base_seed: int = 0,
    placement: str = "shared",
    verify: bool = False,
) -> ExecutionPlan:
    """Join a compiled model with an allocation into per-AP tile programs.

    Args:
        compiled: model compiled with ``emit_programs=True`` (every layer must
            carry its per-slice AP programs; slice sampling is allowed and the
            resulting scale factor is recorded per layer).
        accelerator: hardware the plan targets; a default-configured
            :class:`~repro.arch.accelerator.Accelerator` when omitted.
        allocation: per-layer placement; computed from the accelerator's AP
            budget when omitted.
        base_seed: seed of the deterministic per-tile input generator.
        placement: ``"shared"`` (default) starts every layer's addresses at
            AP 0, so layers time-share the same APs and implicitly reprogram
            them per dispatch; ``"resident"`` advances an address cursor
            across layers so every layer's tiles own disjoint APs - the
            weight-resident mode
            :meth:`~repro.arch.accelerator.Accelerator.deploy_plan` pins.
        verify: statically verify the built plan with
            :func:`repro.analysis.plan.verify_execution_plan` before
            returning it (verify-before-execute; see ``repro check``).

    Raises:
        CompilationError: if a layer has no emitted programs.
        CapacityError: if the allocation needs more APs than the accelerator
            provides (for ``"resident"`` placement: summed across *all*
            layers, since they no longer time-share).
        ConfigurationError: for an unknown placement policy.
        AnalysisError: if ``verify`` is set and the plan carries any
            error-severity diagnostic.
    """
    if placement not in ("shared", "resident"):
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown placement {placement!r}; expected 'shared' or 'resident'"
        )
    build_started = time.perf_counter()
    accelerator = accelerator or Accelerator()
    architecture = accelerator.config
    if allocation is None:
        demands = [layer.mapping.demand() for layer in compiled.layers]
        allocation = allocate_model(
            demands,
            available_aps=accelerator.num_aps,
            max_output_tiles=architecture.aps_per_tile,
        )
    allocations = allocation.by_name()
    addresses = list(accelerator.ap_addresses())

    plan = ExecutionPlan(
        name=compiled.name,
        architecture=architecture,
        allocation=allocation,
        base_seed=base_seed,
        placement=placement,
    )
    cursor = 0
    for layer_index, layer in enumerate(compiled.layers):
        if not layer.slices:
            raise CompilationError(
                f"layer {layer.name!r} carries no AP programs; compile the "
                f"model with emit_programs=True to build an execution plan"
            )
        layer_allocation = allocations[layer.name]
        mapping = layer.mapping
        parallel_groups = layer_allocation.parallel_channel_groups
        channel_groups = layer_allocation.demand.channel_groups
        concurrent_aps = mapping.row_tiles * parallel_groups
        base = cursor if placement == "resident" else 0
        if base + concurrent_aps > len(addresses):
            if placement == "resident":
                required = resident_aps_required(compiled)
                # The structured fields are the machine-readable sizing
                # hint: callers auto-size from the exception without
                # parsing the message.
                raise CapacityError(
                    f"weight-resident deploy oversubscribed: layer "
                    f"{layer.name!r} needs {concurrent_aps} APs at offset "
                    f"{base} but the accelerator provides {len(addresses)}; "
                    f"resident placement cannot time-share APs across layers "
                    f"- the full pipeline needs resident_aps_required="
                    f"{required} APs, so grow the accelerator (e.g. "
                    f"config.with_total_aps({required})) or use "
                    f"placement='shared'",
                    requested=base + concurrent_aps,
                    available=len(addresses),
                    resident_aps_required=required,
                )
            raise CapacityError(
                f"layer {layer.name!r} needs {concurrent_aps} concurrent APs "
                f"but the accelerator provides {len(addresses)}",
                requested=concurrent_aps,
                available=len(addresses),
            )
        cursor += concurrent_aps
        planned = PlannedLayer(
            name=layer.name,
            layer_index=layer_index,
            allocation=layer_allocation,
            out_channels=mapping.out_channels,
            accumulator_width=mapping.accumulator_width,
            output_positions=mapping.output_positions,
            scale_factor=layer.scale_factor,
        )
        slice_groups = _partition_slices(layer, channel_groups)
        for row_tile in range(mapping.row_tiles):
            rows = (
                mapping.rows_used_in_last_tile
                if row_tile == mapping.row_tiles - 1
                else mapping.rows_per_ap
            )
            for group, slice_indices in enumerate(slice_groups):
                if not slice_indices:
                    continue
                slot = group % parallel_groups
                address = addresses[base + row_tile * parallel_groups + slot]
                planned.tiles.append(
                    TileProgram(
                        address=address,
                        layer_index=layer_index,
                        layer_name=layer.name,
                        row_tile=row_tile,
                        channel_group=group,
                        round_index=group // parallel_groups,
                        channel_indices=tuple(
                            layer.slices[index].channel_index
                            for index in slice_indices
                        ),
                        programs=tuple(
                            layer.slices[index].program for index in slice_indices
                        ),
                        rows=rows,
                        input_seed=derive_tile_seed(
                            base_seed, layer_index, row_tile, group
                        ),
                        activation_bits=compiled.config.activation_bits,
                        signed_activations=compiled.config.signed_activations,
                    )
                )
        plan.layers.append(planned)
    if plan.required_columns > architecture.ap.columns:
        raise CapacityError(
            f"plan needs {plan.required_columns} CAM columns but the "
            f"architecture's APs provide {architecture.ap.columns}",
            requested=plan.required_columns,
            available=architecture.ap.columns,
        )
    if verify:
        from repro.analysis.plan import verify_execution_plan

        verify_execution_plan(plan, accelerator, compiled=compiled).raise_for_errors()
    telemetry.complete(
        "runtime.build_plan",
        build_started,
        time.perf_counter(),
        plan=plan.name,
        placement=placement,
        layers=len(plan.layers),
        tiles=sum(len(layer.tiles) for layer in plan.layers),
    )
    return plan
