"""Analytical performance and energy model of the RTM-AP accelerator.

Takes compiled models (operation counts, widths, mapping) and the architecture
description and produces per-layer and end-to-end energy/latency figures with
the component breakdown the paper reports in Fig. 4 (DFG, accumulation,
peripherals, data movement), plus the endurance/lifetime analysis of Sec. V-C.
"""

from repro.perf.breakdown import EnergyBreakdown, LatencyBreakdown
from repro.perf.model import (
    CostModelCrosscheck,
    ExecutionCrosscheck,
    LayerCostCrosscheck,
    LayerPerformance,
    ModelPerformance,
    PerformanceModelConfig,
    crosscheck_cost_model,
    crosscheck_execution,
    evaluate_layer,
    evaluate_model,
)
from repro.perf.endurance import endurance_report, EnduranceReport
from repro.perf.pipeline import (
    PipelineCost,
    pipeline_cost,
    pipeline_cost_from_execution,
)

__all__ = [
    "EnergyBreakdown",
    "LatencyBreakdown",
    "CostModelCrosscheck",
    "ExecutionCrosscheck",
    "LayerCostCrosscheck",
    "LayerPerformance",
    "ModelPerformance",
    "PerformanceModelConfig",
    "crosscheck_cost_model",
    "crosscheck_execution",
    "evaluate_layer",
    "evaluate_model",
    "endurance_report",
    "EnduranceReport",
    "PipelineCost",
    "pipeline_cost",
    "pipeline_cost_from_execution",
]
