"""Analytic pipeline latency model: fill / steady state / drain.

A weight-resident deployment turns the network into a hardware pipeline:
every layer owns a disjoint AP group (a *stage*), and a stream of images
flows through the stages.  The batch latency of that pipeline is governed by
the classic three-phase decomposition:

* **fill** - the first image must traverse every stage before the last stage
  produces anything;
* **steady state** - once full, the pipeline retires one image per
  *bottleneck interval* (the slowest stage's latency);
* **drain** - after the last image enters, the tail stages finish it.

With per-image stage latencies ``t_1..t_S`` and ``N`` images:

* pipelined batch latency = ``sum(t) + (N - 1) * max(t)``,
* layer-synchronous batch latency = ``N * sum(t)`` (a barrier after every
  stage means no two stages ever overlap),
* steady-state speedup tends to ``sum(t) / max(t)`` as ``N`` grows - the
  number of *balanced* stages, which is why resident placement (disjoint
  per-layer AP groups) is what makes pipelining worth building.

:func:`pipeline_cost` models an explicit stage profile;
:func:`pipeline_cost_from_execution` derives the profile from a functional
:class:`~repro.runtime.scheduler.PlanExecution` (per-layer modeled latency
divided by the images the run processed).  ``repro serve`` surfaces the
result next to the measured wall-clock so the model can be sanity-checked
against real overlapped execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PipelineCost:
    """Fill / steady-state / drain decomposition of one pipelined batch."""

    #: Per-image latency of each stage (ms), in pipeline order.
    stage_latencies_ms: Tuple[float, ...]
    #: Images streamed through the pipeline.
    images: int

    def __post_init__(self) -> None:
        if not self.stage_latencies_ms:
            raise ConfigurationError("a pipeline needs at least one stage")
        if self.images < 1:
            raise ConfigurationError(f"images must be >= 1, got {self.images}")

    # ------------------------------------------------------------------
    @property
    def stages(self) -> int:
        """Number of pipeline stages (resident layers)."""
        return len(self.stage_latencies_ms)

    @property
    def bottleneck_ms(self) -> float:
        """Slowest stage: the steady-state issue interval per image."""
        return max(self.stage_latencies_ms)

    @property
    def fill_ms(self) -> float:
        """Latency of the first image through every stage (ramp-up)."""
        return sum(self.stage_latencies_ms)

    @property
    def fill_drain_overhead_ms(self) -> float:
        """Time not covered by steady-state issue (ramp-up plus tail)."""
        return self.fill_ms - self.bottleneck_ms

    @property
    def steady_state_ms(self) -> float:
        """Steady-state portion: one bottleneck interval per image."""
        return self.images * self.bottleneck_ms

    @property
    def pipelined_latency_ms(self) -> float:
        """Batch latency of the pipelined schedule."""
        return self.fill_ms + (self.images - 1) * self.bottleneck_ms

    @property
    def synchronous_latency_ms(self) -> float:
        """Batch latency of the layer-synchronous schedule (no overlap)."""
        return self.images * self.fill_ms

    @property
    def speedup(self) -> float:
        """Modeled pipelined vs. layer-synchronous speedup for this batch."""
        return self.synchronous_latency_ms / self.pipelined_latency_ms

    @property
    def steady_state_speedup(self) -> float:
        """Asymptotic speedup as the image stream grows (sum/max)."""
        return self.fill_ms / self.bottleneck_ms

    @property
    def utilization(self) -> float:
        """Fraction of stage-time the pipelined schedule keeps stages busy."""
        total_work = self.images * self.fill_ms
        occupancy = self.stages * self.pipelined_latency_ms
        return total_work / occupancy if occupancy else 0.0

    def describe(self) -> str:
        """One-line summary used by reports and the CLI."""
        return (
            f"pipeline of {self.stages} stages x {self.images} images: "
            f"fill {self.fill_ms:.5f} ms, steady-state interval "
            f"{self.bottleneck_ms:.5f} ms/image, batch "
            f"{self.pipelined_latency_ms:.5f} ms vs "
            f"{self.synchronous_latency_ms:.5f} ms layer-synchronous "
            f"({self.speedup:.2f}x, -> {self.steady_state_speedup:.2f}x "
            f"steady state)"
        )


def pipeline_cost(
    stage_latencies_ms: Sequence[float], images: int
) -> PipelineCost:
    """Model a pipelined batch from an explicit per-stage latency profile."""
    return PipelineCost(
        stage_latencies_ms=tuple(float(value) for value in stage_latencies_ms),
        images=images,
    )


def pipeline_cost_from_execution(
    execution, images: Optional[int] = None
) -> PipelineCost:
    """Derive the pipeline model from a functional plan execution.

    Uses each layer's modeled latency as its stage time.  ``images`` defaults
    to 1; pass the request's image count to split the aggregated per-layer
    latency (which sums every image's stream) back into a per-image stage
    profile.
    """
    count = 1 if images is None else images
    if count < 1:
        raise ConfigurationError(f"images must be >= 1, got {count}")
    stages = [layer.latency_ms / count for layer in execution.layers]
    return pipeline_cost(stages, count)
