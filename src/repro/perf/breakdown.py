"""Energy and latency breakdown records (the Fig. 4 component categories)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: femtojoules per microjoule.
FJ_PER_UJ = 1e9
#: nanoseconds per millisecond.
NS_PER_MS = 1e6


@dataclass
class EnergyBreakdown:
    """Energy split into the component categories of the paper's Fig. 4."""

    #: Channel-wise DFG phase (AP search/write/shift work).
    dfg_fj: float = 0.0
    #: Accumulation phase (local accumulate + inter-AP adder tree).
    accumulation_fj: float = 0.0
    #: Controller, instruction cache and buffer accesses.
    peripherals_fj: float = 0.0
    #: Interconnect data movement (partial sums, input load).
    movement_fj: float = 0.0

    @property
    def total_fj(self) -> float:
        """Total energy in femtojoules."""
        return self.dfg_fj + self.accumulation_fj + self.peripherals_fj + self.movement_fj

    @property
    def total_uj(self) -> float:
        """Total energy in microjoules (the paper's unit)."""
        return self.total_fj / FJ_PER_UJ

    @property
    def movement_fraction(self) -> float:
        """Fraction of the energy spent on data movement (paper: ~3 %)."""
        total = self.total_fj
        return self.movement_fj / total if total else 0.0

    def merge(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        """Element-wise sum of two breakdowns."""
        return EnergyBreakdown(
            dfg_fj=self.dfg_fj + other.dfg_fj,
            accumulation_fj=self.accumulation_fj + other.accumulation_fj,
            peripherals_fj=self.peripherals_fj + other.peripherals_fj,
            movement_fj=self.movement_fj + other.movement_fj,
        )

    def as_uj_dict(self) -> Dict[str, float]:
        """Component values in microjoules (for tables and plots)."""
        return {
            "dfg": self.dfg_fj / FJ_PER_UJ,
            "accumulation": self.accumulation_fj / FJ_PER_UJ,
            "peripherals": self.peripherals_fj / FJ_PER_UJ,
            "movement": self.movement_fj / FJ_PER_UJ,
        }


@dataclass
class LatencyBreakdown:
    """Latency split by execution phase."""

    #: Channel-wise DFG phase.
    dfg_ns: float = 0.0
    #: Accumulation phase (local + adder tree).
    accumulation_ns: float = 0.0
    #: Data movement not overlapped with computation.
    movement_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        """Total latency in nanoseconds."""
        return self.dfg_ns + self.accumulation_ns + self.movement_ns

    @property
    def total_ms(self) -> float:
        """Total latency in milliseconds (the paper's unit)."""
        return self.total_ns / NS_PER_MS

    def merge(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        """Element-wise sum of two breakdowns."""
        return LatencyBreakdown(
            dfg_ns=self.dfg_ns + other.dfg_ns,
            accumulation_ns=self.accumulation_ns + other.accumulation_ns,
            movement_ns=self.movement_ns + other.movement_ns,
        )

    def as_ms_dict(self) -> Dict[str, float]:
        """Component values in milliseconds (for tables and plots)."""
        return {
            "dfg": self.dfg_ns / NS_PER_MS,
            "accumulation": self.accumulation_ns / NS_PER_MS,
            "movement": self.movement_ns / NS_PER_MS,
        }
