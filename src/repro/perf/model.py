"""Analytical energy/latency model of the RTM-AP (paper Sec. V).

The model consumes the *compiled* network (exact static operation counts and
bit widths per layer), the layer mapping (rows, row tiles, channel groups) and
the architecture/technology figures of merit, and produces per-layer and
end-to-end energy and latency with the Fig. 4 component breakdown.

Modelling summary (see DESIGN.md for the full rationale):

* Each static AP instruction is costed with :func:`repro.ap.cost.instruction_cost`
  using the number of *active rows* of the layer (output positions); the same
  static instruction runs on every row tile in parallel, so its energy scales
  with the total active rows while latency counts it once.
* The channel-wise DFG and local accumulation work of one layer is spread over
  the layer's channel groups; groups run on different APs in parallel (subject
  to the allocation), so per-layer latency divides by the number of parallel
  groups and multiplies by the sequential rounds.
* The adder-tree accumulation between channel groups adds ``Cout*(groups-1)``
  operations and moves one partial sum per output value per merge across the
  interconnect at the paper's 1 pJ/bit.
* Peripherals cover the per-instruction controller/instruction-cache energy
  and the tile-buffer traffic of im2col staging and OFM hand-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.ap.backends import DEFAULT_BACKEND as DEFAULT_EXECUTION_BACKEND
from repro.ap.cost import (
    DEFAULT_MATCH_PROBABILITY,
    InstructionCost,
    instruction_cost,
    program_cost,
)
from repro.ap.isa import APInstruction, APOpcode, ColumnRegion
from repro.arch.allocator import (
    AllocationPlan,
    LayerAllocation,
    LayerDemand,
    allocate_model,
)
from repro.arch.config import ArchitectureConfig
from repro.arch.interconnect import InterconnectModel, TransferScope
from repro.core.compiler import CompiledLayer, CompiledModel
from repro.errors import ConfigurationError
from repro.perf.breakdown import EnergyBreakdown, LatencyBreakdown


@dataclass(frozen=True)
class PerformanceModelConfig:
    """Knobs of the analytical model."""

    #: Expected fraction of rows matching one search pattern (write energy).
    match_probability: float = DEFAULT_MATCH_PROBABILITY
    #: Charge the initial input-image load to the first layer's movement.
    include_input_load: bool = True
    #: Charge tile-buffer traffic for im2col staging and OFM hand-off.
    include_buffer_traffic: bool = True
    #: Explicit AP budget; ``None`` sizes the accelerator for full parallelism.
    available_aps: Optional[int] = None
    #: Let row-starved layers spread their output channels over idle APs
    #: (divides their latency without adding partial-sum movement).
    output_channel_parallelism: bool = True
    #: Images processed per layer pass.  Batching fills the otherwise idle CAM
    #: rows of the deep layers (the paper's Sec. V-B suggestion "processing
    #: multiple images per layer"); reported energy/latency stay per-batch,
    #: use ``ModelPerformance.latency_per_image_ms`` for per-image figures.
    batch_size: int = 1
    #: Execution backend used whenever the analytical expectations are
    #: cross-checked against functional simulation (see
    #: :func:`crosscheck_cost_model`).  The analytic numbers themselves are
    #: backend-independent - every backend emits identical event counts.
    execution_backend: str = DEFAULT_EXECUTION_BACKEND


def _arith_cost(
    width: int, rows: int, inplace: bool, match_probability: float
) -> InstructionCost:
    """Cost of one representative add/sub instruction of the given width."""
    if inplace:
        dest = ColumnRegion(column=2, width=width)
        instruction = APInstruction(
            opcode=APOpcode.ADD_INPLACE,
            dest=dest,
            src_a=ColumnRegion(column=1, width=width),
            src_b=dest,
        )
    else:
        instruction = APInstruction(
            opcode=APOpcode.ADD_OUTOFPLACE,
            dest=ColumnRegion(column=3, width=width),
            src_a=ColumnRegion(column=1, width=width),
            src_b=ColumnRegion(column=2, width=width),
        )
    return instruction_cost(instruction, rows=rows, match_probability=match_probability)


@dataclass
class LayerPerformance:
    """Energy/latency result for one layer."""

    name: str
    energy: EnergyBreakdown
    latency: LatencyBreakdown
    allocation: LayerAllocation
    #: Static add/sub instructions (DFG + local accumulation + adder tree).
    total_ops: int
    #: Active rows (output positions) of the layer.
    active_rows: int
    #: APs occupied while the layer runs.
    aps_used: int

    @property
    def energy_uj(self) -> float:
        """Layer energy in microjoules."""
        return self.energy.total_uj

    @property
    def latency_ms(self) -> float:
        """Layer latency in milliseconds."""
        return self.latency.total_ms


@dataclass
class ModelPerformance:
    """End-to-end result for a whole network (one batch of ``batch_size`` images)."""

    name: str
    configuration: str
    activation_bits: int
    layers: List[LayerPerformance]
    allocation: AllocationPlan
    batch_size: int = 1

    @property
    def energy(self) -> EnergyBreakdown:
        """Total energy breakdown."""
        total = EnergyBreakdown()
        for layer in self.layers:
            total = total.merge(layer.energy)
        return total

    @property
    def latency(self) -> LatencyBreakdown:
        """Total latency breakdown."""
        total = LatencyBreakdown()
        for layer in self.layers:
            total = total.merge(layer.latency)
        return total

    @property
    def energy_uj(self) -> float:
        """Energy per inference in microjoules (Table II)."""
        return self.energy.total_uj

    @property
    def latency_ms(self) -> float:
        """Latency per inference in milliseconds (Table II)."""
        return self.latency.total_ms

    @property
    def total_ops(self) -> int:
        """Static add/sub instructions per inference."""
        return sum(layer.total_ops for layer in self.layers)

    @property
    def arrays_used(self) -> int:
        """Peak number of CAM arrays used by any layer."""
        return max((layer.aps_used for layer in self.layers), default=0)

    @property
    def movement_fraction(self) -> float:
        """Fraction of total energy spent moving data (paper: ~3 %)."""
        return self.energy.movement_fraction

    @property
    def energy_per_image_uj(self) -> float:
        """Energy per image (equals :attr:`energy_uj` for batch size 1)."""
        return self.energy_uj / self.batch_size

    @property
    def latency_per_image_ms(self) -> float:
        """Amortized latency per image of a batched run."""
        return self.latency_ms / self.batch_size

    @property
    def energy_delay_product(self) -> float:
        """Energy-delay product in uJ*ms (used for energy-efficiency ratios)."""
        return self.energy_per_image_uj * self.latency_per_image_ms

    def layer_by_name(self, name: str) -> LayerPerformance:
        """Look up a layer's performance record."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise ConfigurationError(f"no layer named {name!r} in performance result")


def evaluate_layer(
    layer: CompiledLayer,
    allocation: LayerAllocation,
    architecture: ArchitectureConfig,
    interconnect: Optional[InterconnectModel] = None,
    config: Optional[PerformanceModelConfig] = None,
    is_first_layer: bool = False,
) -> LayerPerformance:
    """Evaluate one compiled layer under a given allocation."""
    config = config or PerformanceModelConfig()
    interconnect = interconnect or InterconnectModel.from_architecture(architecture)
    technology = architecture.technology
    mapping = layer.mapping
    # Active rows: one per output position and per image in the batch - the
    # same static instruction stream serves them all (SIMD), so energy scales
    # with the batch while the instruction count (latency) does not.
    rows = mapping.output_positions * max(1, config.batch_size)
    parallel_groups = allocation.parallel_channel_groups
    rounds = allocation.sequential_rounds
    compute_parallelism = allocation.compute_parallelism

    total_dfg_ops = layer.dfg_ops
    inplace_fraction = (
        layer.inplace_ops / max(1, layer.inplace_ops + layer.outofplace_ops)
    )

    # ------------------------------------------------------------------
    # Channel-wise DFG phase.
    # ------------------------------------------------------------------
    dfg_energy_fj = 0.0
    dfg_latency_ns = 0.0
    for width, count in sorted(layer.dfg_width_histogram.items()):
        inplace_cost = _arith_cost(width, rows, True, config.match_probability)
        outofplace_cost = _arith_cost(width, rows, False, config.match_probability)
        energy_per_op = (
            inplace_fraction * inplace_cost.energy_fj(technology)
            + (1.0 - inplace_fraction) * outofplace_cost.energy_fj(technology)
        )
        latency_per_op = (
            inplace_fraction * inplace_cost.latency_ns(technology)
            + (1.0 - inplace_fraction) * outofplace_cost.latency_ns(technology)
        )
        dfg_energy_fj += count * energy_per_op
        dfg_latency_ns += count * latency_per_op
    # Latency: the per-layer op stream is spread over the parallel channel
    # groups and output tiles, and repeated for the sequential rounds.
    dfg_latency_ns = dfg_latency_ns / max(1, compute_parallelism) * rounds

    # ------------------------------------------------------------------
    # Accumulation phase: local accumulation plus the inter-AP adder tree.
    # ------------------------------------------------------------------
    accumulator_width = mapping.accumulator_width
    local_cost = _arith_cost(accumulator_width, rows, True, config.match_probability)
    accumulation_energy_fj = layer.accumulation_ops * local_cost.energy_fj(technology)
    accumulation_latency_ns = (
        layer.accumulation_ops
        * local_cost.latency_ns(technology)
        / max(1, compute_parallelism)
        * rounds
    )

    tree_merges = max(0, parallel_groups - 1)
    tree_ops = mapping.out_channels * tree_merges
    tree_levels = math.ceil(math.log2(parallel_groups)) if parallel_groups > 1 else 0
    movement_bits = 0.0
    if tree_merges:
        tree_cost = _arith_cost(accumulator_width, rows, False, config.match_probability)
        accumulation_energy_fj += tree_ops * tree_cost.energy_fj(technology)
        accumulation_latency_ns += (
            tree_levels * mapping.out_channels * tree_cost.latency_ns(technology)
        )
        movement_bits += float(tree_merges * mapping.out_channels) * rows * accumulator_width

    # ------------------------------------------------------------------
    # Data movement.
    # ------------------------------------------------------------------
    movement = interconnect.transfer(movement_bits, TransferScope.INTRA_TILE)
    movement_energy_fj = movement.energy_fj
    movement_latency_ns = movement.latency_ns
    if config.include_input_load and is_first_layer:
        # Raw input image(s) entering the accelerator once; the im2col
        # expansion happens locally and is charged as buffer traffic below.
        input_bits = (
            mapping.in_channels
            * mapping.input_positions
            * mapping.activation_bits
            * max(1, config.batch_size)
        )
        load = interconnect.transfer(float(input_bits), TransferScope.GLOBAL)
        movement_energy_fj += load.energy_fj
        movement_latency_ns += load.latency_ns

    # ------------------------------------------------------------------
    # Peripherals: controller/instruction cache and tile-buffer traffic.
    # ------------------------------------------------------------------
    static_ops = layer.total_ops + tree_ops
    peripherals_fj = (
        static_ops * architecture.instruction_cache_energy_fj * mapping.row_tiles
    )
    if config.include_buffer_traffic:
        # im2col staging: every AP that computes output channels of this layer
        # holds a copy of its input patches, so output-channel parallelism
        # replicates the staging traffic.
        im2col_bits = (
            mapping.in_channels
            * rows
            * mapping.patch_columns
            * mapping.activation_bits
            * allocation.parallel_output_tiles
        )
        ofm_bits = mapping.out_channels * rows * mapping.activation_bits
        peripherals_fj += (im2col_bits + ofm_bits) * architecture.buffer_energy_fj_per_bit

    energy = EnergyBreakdown(
        dfg_fj=dfg_energy_fj,
        accumulation_fj=accumulation_energy_fj,
        peripherals_fj=peripherals_fj,
        movement_fj=movement_energy_fj,
    )
    latency = LatencyBreakdown(
        dfg_ns=dfg_latency_ns,
        accumulation_ns=accumulation_latency_ns,
        movement_ns=movement_latency_ns,
    )
    return LayerPerformance(
        name=layer.name,
        energy=energy,
        latency=latency,
        allocation=allocation,
        total_ops=static_ops,
        active_rows=rows,
        aps_used=allocation.aps_used,
    )


def evaluate_model(
    compiled: CompiledModel,
    architecture: Optional[ArchitectureConfig] = None,
    config: Optional[PerformanceModelConfig] = None,
    interconnect: Optional[InterconnectModel] = None,
) -> ModelPerformance:
    """Evaluate a compiled network end to end."""
    config = config or PerformanceModelConfig()
    if config.batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {config.batch_size}")
    architecture = architecture or compiled.config.effective_architecture
    interconnect = interconnect or InterconnectModel.from_architecture(architecture)

    demands = []
    for layer in compiled.layers:
        demand = layer.mapping.demand()
        if config.batch_size > 1:
            batched_rows = layer.mapping.output_positions * config.batch_size
            demand = LayerDemand(
                name=demand.name,
                row_tiles=-(-batched_rows // layer.mapping.rows_per_ap),
                channel_groups=demand.channel_groups,
                max_output_tiles=demand.max_output_tiles,
            )
        demands.append(demand)
    available = config.available_aps
    if available is None:
        available = max(
            (demand.aps_for_full_parallelism for demand in demands), default=1
        )
    allocation_plan = allocate_model(
        demands,
        available_aps=available,
        use_idle_aps_for_output_parallelism=config.output_channel_parallelism,
        max_output_tiles=architecture.aps_per_tile,
    )
    allocations = allocation_plan.by_name()

    layers: List[LayerPerformance] = []
    for index, layer in enumerate(compiled.layers):
        layers.append(
            evaluate_layer(
                layer,
                allocations[layer.mapping.layer_name],
                architecture,
                interconnect=interconnect,
                config=config,
                is_first_layer=(index == 0),
            )
        )
    return ModelPerformance(
        name=compiled.name,
        configuration=compiled.config.configuration_name,
        activation_bits=compiled.config.activation_bits,
        layers=layers,
        allocation=allocation_plan,
        batch_size=config.batch_size,
    )


# ----------------------------------------------------------------------
# Functional cross-check of the analytical cost model
# ----------------------------------------------------------------------
@dataclass
class CostModelCrosscheck:
    """Exact functional event counts vs. the analytic expectation.

    Search phases are data-independent, so ``search_phases_exact`` must hold
    for any correct backend; write phases depend on which LUT passes fire and
    are bounded above by the analytic count (which assumes no pass is ever
    skipped).
    """

    backend: str
    width: int
    rows: int
    measured_search_phases: int
    measured_write_phases: int
    predicted_search_phases: int
    predicted_write_phases: int
    measured_energy_fj: float
    predicted_energy_fj: float

    @property
    def search_phases_exact(self) -> bool:
        """Analytic search-phase count equals the functional count."""
        return self.measured_search_phases == self.predicted_search_phases

    @property
    def write_phases_bounded(self) -> bool:
        """Functional write phases never exceed the analytic expectation."""
        return self.measured_write_phases <= self.predicted_write_phases

    @property
    def consistent(self) -> bool:
        """True when the functional run stays within the model's envelope."""
        return self.search_phases_exact and self.write_phases_bounded


def crosscheck_cost_model(
    width: int = 8,
    rows: int = 64,
    config: Optional[PerformanceModelConfig] = None,
    architecture: Optional[ArchitectureConfig] = None,
    seed: int = 0,
) -> CostModelCrosscheck:
    """Validate the analytic per-instruction costs against a functional AP.

    Runs one representative in-place and one out-of-place addition on random
    operands using ``config.execution_backend`` and compares the exact event
    counters with :func:`repro.ap.cost.instruction_cost`.  Because every
    execution backend must produce identical counters, this doubles as a
    quick calibration check when switching backends.
    """
    import numpy as np

    from repro.ap.core import AssociativeProcessor

    config = config or PerformanceModelConfig()
    architecture = architecture or ArchitectureConfig()
    technology = architecture.technology
    rng = np.random.default_rng(seed)

    ap = AssociativeProcessor(
        rows=rows,
        columns=8,
        technology=technology,
        backend=config.execution_backend,
    )
    half = 1 << (width - 2)
    a = rng.integers(-half, half, rows)
    b = rng.integers(-half, half, rows)
    ap.add_vectors(a, b, width=width, inplace=True)
    ap.add_vectors(a, b, width=width, inplace=False)
    measured = ap.reset_stats()

    predicted = _arith_cost(width, rows, True, config.match_probability).merge(
        _arith_cost(width, rows, False, config.match_probability)
    )
    return CostModelCrosscheck(
        backend=ap.backend.name,
        width=width,
        rows=rows,
        measured_search_phases=measured.search_phases,
        measured_write_phases=measured.write_phases,
        predicted_search_phases=predicted.search_phases,
        predicted_write_phases=predicted.write_phases,
        measured_energy_fj=measured.energy_fj(technology),
        predicted_energy_fj=predicted.energy_fj(technology),
    )


# ----------------------------------------------------------------------
# Steady-state amortization: deploy-once / serve-many accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SteadyStateCost:
    """Deploy cost vs. per-request cost of a weight-resident session.

    The paper's operating model is that ternary weights stay resident in CAM
    while activations stream through: programming the weights is a one-time
    *deploy* cost, and each served request pays only its own compute and
    activation movement.  This record keeps the two separate and amortizes
    the deploy cost over any request count.
    """

    #: One-time CAM weight-programming cost (interconnect transfer figures).
    deploy_energy_uj: float
    deploy_latency_ms: float
    #: Requests actually served so far.
    requests: int
    #: Mean functional cost of one served request.
    per_request_energy_uj: float
    per_request_latency_ms: float

    def amortized_energy_uj(self, requests: Optional[int] = None) -> float:
        """Energy per request with the deploy cost spread over ``requests``."""
        count = requests if requests is not None else self.requests
        if count < 1:
            raise ConfigurationError(f"requests must be >= 1, got {count}")
        return self.deploy_energy_uj / count + self.per_request_energy_uj

    def amortized_latency_ms(self, requests: Optional[int] = None) -> float:
        """Latency per request with the deploy cost spread over ``requests``."""
        count = requests if requests is not None else self.requests
        if count < 1:
            raise ConfigurationError(f"requests must be >= 1, got {count}")
        return self.deploy_latency_ms / count + self.per_request_latency_ms


def steady_state_cost(deployment, executions) -> SteadyStateCost:
    """Split a session's accounting into deploy cost vs. per-request cost.

    Args:
        deployment: the :class:`~repro.arch.accelerator.Deployment` returned
            by :meth:`~repro.arch.accelerator.Accelerator.deploy_plan` (the
            one-time CAM weight-programming traffic).
        executions: one functional
            :class:`~repro.runtime.scheduler.PlanExecution` per served
            request; the per-request figures are their means.
    """
    executions = list(executions)
    count = len(executions)
    energy = sum(execution.energy_uj for execution in executions)
    latency = sum(execution.latency_ms for execution in executions)
    return SteadyStateCost(
        deploy_energy_uj=deployment.energy_uj,
        deploy_latency_ms=deployment.latency_ms,
        requests=count,
        per_request_energy_uj=energy / count if count else 0.0,
        per_request_latency_ms=latency / count if count else 0.0,
    )


# ----------------------------------------------------------------------
# Layer-granularity crosscheck against the execution-plan runtime
# ----------------------------------------------------------------------
@dataclass
class LayerCostCrosscheck:
    """One layer's functional counters vs. the analytic per-instruction costs.

    The analytic prediction sums :func:`repro.ap.cost.program_cost` over every
    tile program the runtime actually executed, so it compares the cost model
    against functional execution at *layer* granularity (whole instruction
    streams, many APs, partial row tiles) rather than single instructions.
    The invariants are the same as :class:`CostModelCrosscheck`: search
    phases are data-independent and must match exactly; write phases are
    bounded above by the no-pass-skipped analytic count.
    """

    name: str
    tiles: int
    measured_search_phases: int
    measured_write_phases: int
    predicted_search_phases: int
    predicted_write_phases: int
    measured_energy_fj: float
    predicted_energy_fj: float

    @property
    def search_phases_exact(self) -> bool:
        """Analytic search-phase count equals the functional count."""
        return self.measured_search_phases == self.predicted_search_phases

    @property
    def write_phases_bounded(self) -> bool:
        """Functional write phases never exceed the analytic expectation."""
        return self.measured_write_phases <= self.predicted_write_phases

    @property
    def consistent(self) -> bool:
        """True when the functional run stays within the model's envelope."""
        return self.search_phases_exact and self.write_phases_bounded


@dataclass
class ExecutionCrosscheck:
    """Functional plan execution vs. the analytic cost model, per layer."""

    backend: str
    executor: str
    layers: List[LayerCostCrosscheck] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        """True when every layer stays within the model's envelope."""
        return all(layer.consistent for layer in self.layers)

    def describe(self) -> str:
        """Human-readable verdict for reports and assertion messages."""
        if self.consistent:
            return (
                f"cost model consistent with functional execution on "
                f"{len(self.layers)} layers ({self.backend}/{self.executor})"
            )
        broken = [layer.name for layer in self.layers if not layer.consistent]
        return "cost model diverges on layers: " + ", ".join(broken)


def crosscheck_execution(
    plan,
    execution,
    architecture: Optional[ArchitectureConfig] = None,
    match_probability: float = DEFAULT_MATCH_PROBABILITY,
    images: int = 1,
) -> ExecutionCrosscheck:
    """Cross-check a functional plan run against the analytic cost model.

    Extends :func:`crosscheck_cost_model` from single instructions to whole
    layers: for every layer of an executed
    :class:`~repro.runtime.plan.ExecutionPlan`, the exact counters aggregated
    by the runtime (:class:`~repro.runtime.scheduler.PlanExecution`) are
    compared with the expectation obtained by costing the very tile programs
    the runtime dispatched.

    Args:
        plan: the executed :class:`~repro.runtime.plan.ExecutionPlan`.
        execution: the :class:`~repro.runtime.scheduler.PlanExecution`
            returned by :meth:`~repro.arch.accelerator.Accelerator.execute_plan`
            or aggregated by the batched inference dataflow
            (:class:`~repro.inference.engine.BatchedInference`).
        architecture: architecture supplying the technology for the energy
            figures; the plan's architecture when omitted.
        match_probability: expected row-match fraction of the analytic model.
        images: how many images the execution processed - every tile program
            runs once per image, so the analytic expectation scales linearly
            (search phases stay exact; write phases stay an upper bound).
    """
    if images < 1:
        raise ConfigurationError(f"images must be >= 1, got {images}")
    architecture = architecture or plan.architecture
    technology = architecture.technology
    result = ExecutionCrosscheck(
        backend=execution.backend, executor=execution.executor
    )
    layer_results = {layer.name: layer for layer in execution.layers}
    for planned in plan.layers:
        measured = layer_results[planned.name].stats
        predicted = InstructionCost()
        for tile in planned.tiles:
            for program in tile.programs:
                predicted = predicted.merge(
                    program_cost(program, rows=tile.rows, match_probability=match_probability)
                )
        result.layers.append(
            LayerCostCrosscheck(
                name=planned.name,
                tiles=len(planned.tiles),
                measured_search_phases=measured.search_phases,
                measured_write_phases=measured.write_phases,
                predicted_search_phases=predicted.search_phases * images,
                predicted_write_phases=predicted.write_phases * images,
                measured_energy_fj=measured.energy_fj(technology),
                predicted_energy_fj=predicted.energy_fj(technology) * images,
            )
        )
    return result
