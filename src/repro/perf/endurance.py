"""Write-endurance / lifetime analysis of the RTM-AP (paper Sec. V-C).

The paper argues: RTM endures ~1e16 writes; each AP operation writes at most
two columns; execution is spread over 256 columns, so a given column is
rewritten roughly every ~100 ns, giving a lifetime of roughly 31 years.  This
module reproduces that calculation from first principles and also derives the
effective operation interval from a measured (compiled + evaluated) workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.config import ArchitectureConfig
from repro.errors import ConfigurationError
from repro.perf.model import ModelPerformance
from repro.rtm.endurance import LifetimeEstimate, estimate_lifetime
from repro.rtm.timing import RTMTechnology


@dataclass(frozen=True)
class EnduranceReport:
    """Lifetime analysis under a sustained inference workload."""

    #: Lifetime using the paper's idealised argument (columns share the load).
    paper_style: LifetimeEstimate
    #: Lifetime using the measured average operation interval of the workload.
    workload: Optional[LifetimeEstimate]

    @property
    def paper_style_years(self) -> float:
        """Idealised lifetime in years (paper: ~31)."""
        return self.paper_style.lifetime_years

    @property
    def workload_years(self) -> Optional[float]:
        """Workload-derived lifetime in years (None when no workload given)."""
        return self.workload.lifetime_years if self.workload else None


def endurance_report(
    architecture: Optional[ArchitectureConfig] = None,
    performance: Optional[ModelPerformance] = None,
    writes_per_operation: float = 2.0,
    operation_interval_ns: float = 0.8,
) -> EnduranceReport:
    """Build the endurance report.

    Args:
        architecture: supplies the column count and endurance limit (defaults
            to the paper's 256-column, 1e16-cycle RTM).
        performance: optional evaluated workload; its average op interval
            (latency / static ops, per AP) refines the rewrite-interval estimate.
        writes_per_operation: columns written per AP operation (2 for Table I).
        operation_interval_ns: back-to-back operation time (0.8 ns in-place).
    """
    architecture = architecture or ArchitectureConfig()
    technology: RTMTechnology = architecture.technology
    columns = architecture.ap.columns
    paper_style = estimate_lifetime(
        writes_per_operation=writes_per_operation,
        operation_interval_ns=operation_interval_ns,
        columns_sharing_load=columns,
        technology=technology,
    )
    workload_estimate: Optional[LifetimeEstimate] = None
    if performance is not None:
        if performance.total_ops <= 0:
            raise ConfigurationError("performance result contains no operations")
        # Average time between operations issued by one AP while the network
        # runs continuously (back-to-back inferences).
        busiest_ops = max(
            layer.total_ops / max(1, layer.allocation.parallel_channel_groups)
            for layer in performance.layers
        )
        total_latency_ns = performance.latency.total_ns
        interval_ns = total_latency_ns / max(1.0, float(performance.total_ops))
        # The busiest AP sees a shorter effective interval than the average.
        interval_ns = max(interval_ns, operation_interval_ns)
        workload_estimate = estimate_lifetime(
            writes_per_operation=writes_per_operation,
            operation_interval_ns=interval_ns,
            columns_sharing_load=columns,
            technology=technology,
        )
        del busiest_ops
    return EnduranceReport(paper_style=paper_style, workload=workload_estimate)
