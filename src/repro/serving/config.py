"""The consolidated cluster serving configuration.

One :class:`ClusterConfig` declares everything the cluster subsystem needs:
the model a replica deploys (the same fields a
:class:`~repro.session.config.SessionConfig` carries), how many worker
replicas to shard it across, and the front door's admission/batching knobs.
The per-replica session configuration is derived via :meth:`session_config`,
so a cluster replica is - by construction - configured exactly like the
single-process session the cluster's results are asserted byte-identical to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.errors import ConfigurationError

#: Replica-routing policies the cluster understands.
ROUTING_POLICIES: Tuple[str, ...] = ("round-robin", "least-loaded")


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a :class:`~repro.serving.cluster.Cluster` is built from.

    Attributes:
        model: registry model name (``vgg9``/``vgg11``/``resnet18``).  The
            cluster compiles in the parent process and ships the artifacts
            to every replica, so the model must be picklable; registry names
            always are.
        width: channel-width multiplier for registry builds.
        sparsity: ternary weight sparsity (the paper's setting per model
            when omitted).
        bits: activation precision.
        backend: functional AP execution backend (process default when
            omitted).
        executor: per-replica tile executor *name* (``serial`` keeps one
            replica on one core - the data-parallel sharding is the
            replicas themselves).
        workers: worker count for pool executors inside one replica.
        seed: weight RNG / plan seed shared by every replica (replicas are
            data-parallel copies of the *same* deployment).
        name: report name; derived from the model when omitted.
        pipeline: per-replica dispatch discipline for each request wave.
        verify: statically verify each replica's execution plan on deploy.
        replicas: worker processes the resident plan is sharded across.
        queue_depth: bound of the front door's request queue (admission
            control rejects once it stays full).
        admission_timeout_s: how long admission waits for queue space
            before rejecting with
            :class:`~repro.errors.AdmissionError` (backpressure).
        max_wave: continuous batching - up to this many queued requests are
            coalesced into one wave for a replica's batched backend.
        routing: replica routing policy (``round-robin`` or
            ``least-loaded``).
        start_timeout_s: how long :meth:`~repro.serving.cluster.Cluster.start`
            waits for every replica's deploy barrier.
        request_timeout_s: default per-request wait in
            :meth:`~repro.serving.cluster.Cluster.gather` (``None`` waits
            forever; worker death still fails fast).
        trace: structured tracing - ``True`` installs a parent tracer and
            absorbs every replica's shipped span batches; a path string
            also writes one Chrome trace covering the whole cluster on
            close.
        metrics: mirror queue depth, request latencies and per-replica
            ledgers into a :class:`~repro.telemetry.metrics.MetricsRegistry`.
    """

    model: str = "vgg9"
    width: Optional[float] = None
    sparsity: Optional[float] = None
    bits: int = 4
    backend: Optional[str] = None
    executor: str = "serial"
    workers: Optional[int] = None
    seed: int = 0
    name: Optional[str] = None
    pipeline: bool = False
    verify: bool = False
    replicas: int = 2
    queue_depth: int = 64
    admission_timeout_s: float = 0.5
    max_wave: int = 4
    routing: str = "round-robin"
    start_timeout_s: float = 300.0
    request_timeout_s: Optional[float] = 120.0
    trace: Union[bool, str] = False
    metrics: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.model, str):
            raise ConfigurationError(
                f"cluster models are registry names (module trees live in "
                f"one process; replicas need a picklable build recipe), "
                f"got {self.model!r}"
            )
        if not isinstance(self.executor, str):
            raise ConfigurationError(
                f"cluster executors are resolved by name inside each worker "
                f"process, got {self.executor!r}"
            )
        if self.replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.max_wave < 1:
            raise ConfigurationError(
                f"max_wave must be >= 1, got {self.max_wave}"
            )
        if self.admission_timeout_s < 0:
            raise ConfigurationError(
                f"admission_timeout_s must be >= 0, got "
                f"{self.admission_timeout_s}"
            )
        if self.routing not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {self.routing!r}; "
                f"available: {', '.join(ROUTING_POLICIES)}"
            )
        if not isinstance(self.trace, (bool, str)):
            raise ConfigurationError(
                f"trace must be a bool or an output path, got {self.trace!r}"
            )

    @property
    def display_name(self) -> str:
        """Report name: explicit name or the registry model name."""
        return self.name or self.model

    @property
    def trace_enabled(self) -> bool:
        """Whether the cluster should install a parent tracer."""
        return bool(self.trace)

    @property
    def trace_path(self) -> Optional[str]:
        """Chrome-trace output path, when ``trace`` names one."""
        if isinstance(self.trace, str) and self.trace:
            return self.trace
        return None

    def session_config(self):
        """The per-replica session configuration this cluster deploys.

        Every replica is an exact data-parallel copy: same model, seed,
        backend and executor as the single-process session the cluster's
        logits are asserted byte-identical to.  Tracing and metrics stay
        off inside workers - replica spans are captured locally and shipped
        back to the parent tracer instead.
        """
        from repro.session.config import SessionConfig

        return SessionConfig(
            model=self.model,
            width=self.width,
            sparsity=self.sparsity,
            bits=self.bits,
            backend=self.backend,
            executor=self.executor,
            workers=self.workers,
            seed=self.seed,
            name=self.display_name,
            pipeline=self.pipeline,
            verify=self.verify,
        )
