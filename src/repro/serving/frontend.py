"""The asyncio front door: admission control + continuous batching.

:class:`Frontend` sits between async clients and a running
:class:`~repro.serving.cluster.Cluster`:

* **Admission control** - requests enter a bounded ``asyncio.Queue``.  When
  the queue stays full past the admission timeout the request is rejected
  with a typed :class:`~repro.errors.AdmissionError` (backpressure: nothing
  was enqueued, no replica saw it, the client should back off).
* **Continuous batching** - a dispatcher task pulls whatever is queued (up
  to ``max_wave``) and coalesces it into one wave for a single replica, so
  a loaded cluster serves ever-larger batches per resident pass instead of
  queueing per-request round trips.  Coalescing never changes results:
  wave logits are byte-identical to per-request serving.
* **Graceful drain** - :meth:`Frontend.close` stops admitting, lets the
  queue empty, waits out every in-flight wave, then stops the dispatcher.
  A replica death mid-load fails only that replica's in-flight requests
  (typed :class:`~repro.errors.RequestError` per request); new waves route
  to the survivors.

The front door is an asyncio object: build it inside a running event loop
(``async with Frontend(cluster) as frontend: ...``), or use the synchronous
load-generator helpers in :mod:`repro.serving.loadgen` which own the loop.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro.errors import AdmissionError, ClusterError
from repro.serving.cluster import Cluster, ClusterResult

__all__ = ["Frontend"]


@dataclass
class _Entry:
    """One admitted request waiting in the front-door queue."""

    images: np.ndarray
    future: "asyncio.Future[ClusterResult]"
    enqueued_at: float = field(default_factory=time.monotonic)


#: Queue sentinel that stops the dispatcher after the queue has drained.
_CLOSE = object()


class Frontend:
    """Bounded admission + wave-coalescing dispatcher over a cluster.

    Args:
        cluster: a started :class:`~repro.serving.cluster.Cluster`.
        queue_depth: bound of the request queue (cluster config default).
        admission_timeout_s: how long admission waits for queue space
            before rejecting (cluster config default).
        max_wave: most queued requests coalesced into one wave (cluster
            config default).
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        queue_depth: Optional[int] = None,
        admission_timeout_s: Optional[float] = None,
        max_wave: Optional[int] = None,
    ) -> None:
        config = cluster.config
        self.cluster = cluster
        self.queue_depth = queue_depth or config.queue_depth
        self.admission_timeout_s = (
            admission_timeout_s
            if admission_timeout_s is not None
            else config.admission_timeout_s
        )
        self.max_wave = max_wave or config.max_wave
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._settlers: Set[asyncio.Task] = set()
        self._open = False
        self._closed = False
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.waves = 0
        self._wave_sizes: List[int] = []
        self._latencies_s: List[float] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "Frontend":
        """Open the front door inside the running event loop."""
        if self._open:
            raise ClusterError("front door is already open")
        if self._closed:
            raise ClusterError("front door is closed")
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch(), name="repro-frontend-dispatch"
        )
        self._open = True
        return self

    async def __aenter__(self) -> "Frontend":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    async def request(self, images) -> ClusterResult:
        """Admit one request and await its result.

        Raises :class:`~repro.errors.AdmissionError` when the bounded queue
        stays full past the admission timeout (or the door is closed), and
        :class:`~repro.errors.RequestError` when the serving replica failed
        the request.
        """
        if not self._open or self._queue is None:
            self.rejected += 1
            raise AdmissionError(
                "front door is closed", queue_depth=self.queue_depth
            )
        entry = _Entry(
            images=images, future=asyncio.get_running_loop().create_future()
        )
        try:
            self._queue.put_nowait(entry)
        except asyncio.QueueFull:
            try:
                await asyncio.wait_for(
                    self._queue.put(entry), self.admission_timeout_s
                )
            except asyncio.TimeoutError:
                self.rejected += 1
                raise AdmissionError(
                    f"request queue stayed full for "
                    f"{self.admission_timeout_s:.3f}s "
                    f"(depth {self.queue_depth})",
                    queue_depth=self.queue_depth,
                    timeout_s=self.admission_timeout_s,
                ) from None
        self.admitted += 1
        return await entry.future

    def depth(self) -> int:
        """Requests currently waiting in the queue."""
        return self._queue.qsize() if self._queue is not None else 0

    def in_flight(self) -> int:
        """Waves dispatched to the cluster and not yet settled."""
        return len(self._settlers)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self) -> None:
        """Coalesce queued requests into waves and route them to replicas."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            head = await self._queue.get()
            if head is _CLOSE:
                break
            wave: List[_Entry] = [head]
            while len(wave) < self.max_wave:
                try:
                    entry = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if entry is _CLOSE:
                    # Put the sentinel back: drain what we have first.
                    self._queue.put_nowait(_CLOSE)
                    break
                wave.append(entry)
            try:
                handles = await loop.run_in_executor(
                    None,
                    lambda batch=wave: self.cluster.submit_wave(
                        [entry.images for entry in batch]
                    ),
                )
            except ClusterError as error:
                for entry in wave:
                    self.failed += 1
                    if not entry.future.done():
                        entry.future.set_exception(error)
                continue
            self.waves += 1
            self._wave_sizes.append(len(wave))
            for entry, handle in zip(wave, handles):
                settler = loop.create_task(self._settle(entry, handle))
                self._settlers.add(settler)
                settler.add_done_callback(self._settlers.discard)

    async def _settle(self, entry: _Entry, handle) -> None:
        """Await one request's cluster future and settle the client future."""
        try:
            result = await asyncio.wrap_future(handle._future)
        except BaseException as error:  # noqa: BLE001 - forwarded, typed
            self.failed += 1
            if not entry.future.done():
                entry.future.set_exception(error)
        else:
            self.completed += 1
            self._latencies_s.append(time.monotonic() - entry.enqueued_at)
            if not entry.future.done():
                entry.future.set_result(result)

    # ------------------------------------------------------------------
    # Drain / teardown
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Wait until the queue is empty and every in-flight wave settled."""
        if self._queue is None:
            return
        while self._queue.qsize() > 0 or self._settlers:
            settlers = list(self._settlers)
            if settlers:
                await asyncio.gather(*settlers, return_exceptions=True)
            else:
                await asyncio.sleep(0.005)

    async def close(self) -> None:
        """Stop admitting, drain in-flight requests, stop the dispatcher.

        Idempotent; the underlying cluster stays up (close it separately -
        the front door does not own it).
        """
        if self._closed:
            return
        self._closed = True
        self._open = False
        if self._queue is None or self._dispatcher is None:
            return
        await self.drain()
        await self._queue.put(_CLOSE)
        await self._dispatcher
        await self.drain()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics_registry(self, registry=None):
        """Mirror front-door and cluster counters into a metrics registry."""
        from repro.telemetry.metrics import record_queue_depth

        registry = self.cluster.metrics_registry(registry)
        record_queue_depth(registry, self.depth(), capacity=self.queue_depth)
        registry.counter("requests_admitted", "requests admitted").inc(
            self.admitted
        )
        registry.counter(
            "requests_rejected", "requests rejected by admission control"
        ).inc(self.rejected)
        registry.counter("waves_dispatched", "coalesced waves dispatched").inc(
            self.waves
        )
        wave_size = registry.histogram(
            "wave_size", "requests coalesced per wave"
        )
        for size in self._wave_sizes:
            wave_size.observe(size)
        frontdoor = registry.histogram(
            "frontdoor_latency_ms", "enqueue-to-result wall-clock per request"
        )
        for latency in self._latencies_s:
            frontdoor.observe(latency * 1e3)
        return registry
