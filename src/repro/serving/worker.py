"""Worker replica: one process, one accelerator, one resident deployment.

Every cluster replica runs :func:`worker_main` in its own process.  The
worker owns a full :class:`~repro.session.Session` - its own
:class:`~repro.arch.accelerator.Accelerator`, its own weight-resident
execution plan - and serves request *waves* received over a multiprocessing
pipe.  The protocol is deliberately small:

* parent -> worker: :class:`WaveRequest` (a continuous-batching wave of one
  or more client requests, coalesced by the front door) or ``None`` (stop).
* worker -> parent: :class:`ReadyReply` once the deploy barrier is passed,
  one :class:`WaveReply`/:class:`WaveFailure` per wave, a
  :class:`StopReply` on graceful shutdown, and :class:`FatalReply` when the
  replica cannot come up at all.

Determinism is the whole point of the reply shape: a wave stacks its
requests' images into one batch, serves them through the replica's resident
session in a single :meth:`~repro.session.Session.infer` pass (one
mega-kernel wave per layer under the ``batched`` backend), and splits the
logits back per request - byte-identical to serving each request alone,
which in turn is byte-identical to a single-process session (asserted in
``tests/serving`` and gated in ``benchmarks/bench_serving.py``).

Tracing: a forked worker inherits the parent's tracer *object*, which the
parent can never read again - so the worker uninstalls it and, when the
cluster traces, captures spans locally per message and ships the batch back
inside every reply (:meth:`~repro.telemetry.trace.Tracer.absorb` on the
parent side), the same shipping protocol the process-pool executor uses.
Every reply also carries the replica's residency counters, so the parent
can assert zero post-deploy cold leases on every replica without an extra
round trip.
"""

from __future__ import annotations

import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import telemetry

__all__ = [
    "WaveItem",
    "WaveRequest",
    "RequestReply",
    "ReadyReply",
    "WaveReply",
    "WaveFailure",
    "StopReply",
    "FatalReply",
    "WorkerChannel",
    "worker_main",
]


# ----------------------------------------------------------------------
# Wire protocol (all picklable; numpy arrays travel by value)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WaveItem:
    """One client request inside a wave: its id and batched images."""

    request_id: int
    images: np.ndarray


@dataclass(frozen=True)
class WaveRequest:
    """A continuous-batching wave: requests served in one resident pass."""

    items: Tuple[WaveItem, ...]


@dataclass(frozen=True)
class RequestReply:
    """One request's share of a served wave."""

    request_id: int
    logits: np.ndarray
    images: int
    #: Worker-side wall-clock of the wave that served this request.
    wall_s: float


@dataclass(frozen=True)
class _ResidencyCounters:
    """Snapshot of a replica's residency ledger, shipped with every reply."""

    lease_events: int = 0
    reprogram_events: int = 0
    warm_hits: int = 0


@dataclass(frozen=True)
class ReadyReply:
    """Deploy barrier passed: the replica serves warm requests from now on."""

    replica: int
    aps_pinned: int
    tile_programs: int
    residency: _ResidencyCounters
    spans: Tuple = ()


@dataclass(frozen=True)
class WaveReply:
    """A wave served successfully: one :class:`RequestReply` per request."""

    replica: int
    replies: Tuple[RequestReply, ...]
    residency: _ResidencyCounters
    spans: Tuple = ()


@dataclass(frozen=True)
class WaveFailure:
    """A wave failed *inside* the replica; the replica itself keeps serving."""

    replica: int
    request_ids: Tuple[int, ...]
    cause: str
    detail: str
    residency: _ResidencyCounters
    spans: Tuple = ()


@dataclass(frozen=True)
class StopReply:
    """Graceful shutdown: the replica closed its session and is exiting."""

    replica: int
    requests: int
    residency: _ResidencyCounters
    spans: Tuple = ()


@dataclass(frozen=True)
class FatalReply:
    """The replica could not come up (compile/deploy failed)."""

    replica: int
    cause: str
    detail: str


class WorkerChannel:
    """Parent-side request channel of one worker replica.

    Wraps the request pipe and the worker process behind the send/join
    pairing the concurrency lint enforces (``RPA302``): every
    :meth:`send_request` call site must be matched by a :meth:`join` or
    :meth:`close` on a cleanup path, otherwise a failed serving loop can
    strand a live worker process.  Sends are serialized by a lock - the
    asyncio front door and direct ``Cluster.submit`` callers may race.
    """

    def __init__(self, process, connection) -> None:
        import threading

        self._process = process
        self._connection = connection
        self._send_lock = threading.Lock()
        self._closed = False

    def send_request(self, message) -> None:
        """Send one message (a :class:`WaveRequest` or ``None`` to stop)."""
        with self._send_lock:
            if self._closed:
                raise OSError("worker channel is closed")
            self._connection.send(message)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the worker process to exit (escalates on timeout).

        ``terminate``/``kill`` are the escalation ladder of a worker that
        ignored its stop message; a gracefully stopped worker exits on its
        own well before the first rung.
        """
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(5.0)
        if self._process.is_alive():  # pragma: no cover - terminate sufficed
            self._process.kill()
            self._process.join(5.0)

    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Stop the worker: send the stop sentinel, close the pipe, join.

        Idempotent and tolerant of an already-dead worker (the stop send is
        best-effort: a crashed replica's pipe raises, which is fine - the
        join escalation below reaps it either way).
        """
        with self._send_lock:
            if not self._closed:
                self._closed = True
                try:
                    self._connection.send(None)
                except (OSError, ValueError, BrokenPipeError):
                    pass
                try:
                    self._connection.close()
                except OSError:  # pragma: no cover - double close
                    pass
        self.join(timeout)

    @property
    def alive(self) -> bool:
        """Whether the worker process is currently running."""
        return self._process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        """The worker process exit code (``None`` while running)."""
        return self._process.exitcode


# ----------------------------------------------------------------------
# Worker process body
# ----------------------------------------------------------------------
@contextmanager
def _maybe_capture(enabled: bool):
    """Span capture for the shipping protocol (no-op when not tracing)."""
    if not enabled:
        yield None
        return
    with telemetry.capture() as tracer:
        yield tracer


def _drained(tracer) -> Tuple:
    return tuple(tracer.drain()) if tracer is not None else ()


def _residency(session) -> _ResidencyCounters:
    ledger = session.residency
    return _ResidencyCounters(
        lease_events=ledger.lease_events,
        reprogram_events=ledger.reprogram_events,
        warm_hits=ledger.warm_hits,
    )


def _serve_wave(session, wave: WaveRequest, replica: int) -> Tuple[RequestReply, ...]:
    """Serve one coalesced wave through the resident session.

    The wave's requests are stacked into one image batch and served in a
    single warm pass; the logits are split back on the request boundaries.
    Stacked and per-request serving are byte-identical (the engine treats
    images independently; chunking equivalence is asserted in
    ``tests/inference``), so continuous batching is pure throughput.
    """
    batches = [np.asarray(item.images) for item in wave.items]
    counts = [batch.shape[0] for batch in batches]
    stacked = batches[0] if len(batches) == 1 else np.concatenate(batches, axis=0)
    started = time.perf_counter()
    with telemetry.span(
        "serving.wave",
        category="serving",
        replica=replica,
        requests=len(wave.items),
        images=int(sum(counts)),
    ):
        result = session.infer(stacked)
    wall = time.perf_counter() - started
    replies = []
    offset = 0
    for item, count in zip(wave.items, counts):
        replies.append(
            RequestReply(
                request_id=item.request_id,
                logits=result.logits[offset : offset + count],
                images=count,
                wall_s=wall,
            )
        )
        offset += count
    return tuple(replies)


def worker_main(replica: int, config, artifacts, request_conn, response_conn) -> None:
    """Entry point of one worker replica process.

    Args:
        replica: this replica's index (0-based).
        config: the :class:`~repro.serving.config.ClusterConfig`.
        artifacts: optional ``(model, input_shape, compiled)`` tuple from the
            parent's one-time compile (forked replicas inherit it for free;
            spawned ones receive it pickled).  ``None`` makes the replica
            compile on its own.
        request_conn: receive end of the parent's request pipe.
        response_conn: send end of the reply pipe.
    """
    from repro.session import Session

    # A forked child inherits the parent's installed tracer object; records
    # into it are invisible to the parent, so drop it and use the capture /
    # ship protocol instead.
    telemetry.uninstall()
    trace = config.trace_enabled
    session = None
    try:
        with _maybe_capture(trace) as tracer:
            session = Session(config.session_config())
            if artifacts is not None:
                session.adopt(*artifacts)
            else:
                session.compile()
            session.deploy()
        response_conn.send(
            ReadyReply(
                replica=replica,
                aps_pinned=session.deployment.aps_pinned,
                tile_programs=session.deployment.tile_programs,
                residency=_residency(session),
                spans=_drained(tracer),
            )
        )
    except BaseException as error:  # noqa: BLE001 - shipped to the parent
        try:
            response_conn.send(
                FatalReply(
                    replica=replica,
                    cause=repr(error),
                    detail=traceback.format_exc(),
                )
            )
        except OSError:  # pragma: no cover - parent already gone
            pass
        if session is not None:
            session.close()
        return

    served = 0
    try:
        while True:
            try:
                message = request_conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            try:
                with _maybe_capture(trace) as tracer:
                    replies = _serve_wave(session, message, replica)
                served += len(replies)
                response_conn.send(
                    WaveReply(
                        replica=replica,
                        replies=replies,
                        residency=_residency(session),
                        spans=_drained(tracer),
                    )
                )
            except BaseException as error:  # noqa: BLE001 - typed failure
                response_conn.send(
                    WaveFailure(
                        replica=replica,
                        request_ids=tuple(
                            item.request_id for item in message.items
                        ),
                        cause=repr(error),
                        detail=traceback.format_exc(),
                        residency=_residency(session),
                    )
                )
    finally:
        try:
            with _maybe_capture(trace) as tracer:
                residency = _residency(session)
                session.close()
            response_conn.send(
                StopReply(
                    replica=replica,
                    requests=served,
                    residency=residency,
                    spans=_drained(tracer),
                )
            )
        except (OSError, BrokenPipeError):  # pragma: no cover - parent gone
            pass
        try:
            response_conn.close()
            request_conn.close()
        except OSError:  # pragma: no cover - double close
            pass
