"""Cluster-scale serving: sharded accelerator workers + an asyncio front door.

The paper's operating model - deploy the ternary weights into CAM once,
then serve every request warm - extends to cluster scale here: one compiled
plan is sharded across N data-parallel worker processes (each with its own
:class:`~repro.arch.accelerator.Accelerator` and resident deployment), and
an asyncio front door layers bounded admission, continuous batching and
replica routing on top.  Cluster logits stay byte-identical to a
single-process :meth:`~repro.session.Session.infer`, and the
zero-cold-lease invariant is asserted per replica.

Layers, bottom-up:

* :mod:`repro.serving.worker` - the replica process: wire protocol,
  :func:`~repro.serving.worker.worker_main`, and the parent-side
  :class:`~repro.serving.worker.WorkerChannel`.
* :mod:`repro.serving.cluster` - :class:`~repro.serving.cluster.Cluster`,
  the thread-safe parent object mirroring the ``Session`` surface.
* :mod:`repro.serving.frontend` - :class:`~repro.serving.frontend.Frontend`,
  the asyncio admission/batching layer.
* :mod:`repro.serving.loadgen` - seeded open-loop Poisson load generation
  and the saturation probe used by ``benchmarks/bench_serving.py``.
"""

from repro.serving.cluster import (
    Cluster,
    ClusterResult,
    ClusterStats,
    ReplicaStats,
    RequestHandle,
)
from repro.serving.config import ROUTING_POLICIES, ClusterConfig
from repro.serving.frontend import Frontend
from repro.serving.loadgen import LoadReport, poisson_arrivals, run_load, saturate
from repro.serving.worker import WorkerChannel, worker_main

__all__ = [
    "ROUTING_POLICIES",
    "Cluster",
    "ClusterConfig",
    "ClusterResult",
    "ClusterStats",
    "Frontend",
    "LoadReport",
    "ReplicaStats",
    "RequestHandle",
    "WorkerChannel",
    "poisson_arrivals",
    "run_load",
    "saturate",
    "worker_main",
]
