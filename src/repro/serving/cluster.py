"""The cluster: a resident plan sharded across worker replicas.

A :class:`Cluster` mirrors the single-process :class:`~repro.session.Session`
lifecycle at data-parallel scale:

1. :meth:`Cluster.start` compiles the network **once** in the parent
   process, then forks ``config.replicas`` worker processes.  Each replica
   adopts the compiled artifacts, builds its *own*
   :class:`~repro.arch.accelerator.Accelerator`, and deploys the same
   weight-resident plan - the cluster is N independent copies of one
   deployment, not one accelerator shared across processes.  ``start()``
   returns only after every replica has passed its deploy barrier
   (:class:`~repro.serving.worker.ReadyReply`), so the first served request
   is warm on every replica.
2. :meth:`Cluster.submit`/:meth:`Cluster.submit_wave` route request waves
   to replicas (round-robin or least-loaded via an
   :class:`~repro.runtime.pipeline.InFlightTracker` keyed by replica);
   :meth:`Cluster.gather` collects results in submission order.  A replica
   that raises - or dies outright - fails only its own in-flight requests
   with a typed :class:`~repro.errors.RequestError`; the survivors keep
   serving.
3. :meth:`Cluster.stats` exposes per-replica residency deltas (the
   zero-cold-lease invariant, now asserted per replica), and
   :meth:`Cluster.close` drains in-flight work, stops every worker with the
   channel's send/join discipline, and finalizes one Chrome trace that
   covers the whole cluster (parent spans plus every replica's shipped
   span batches).

The asyncio front door (:class:`~repro.serving.frontend.Frontend`) layers
admission control and continuous batching on top of this class; the
:class:`Cluster` itself is a plain thread-safe object usable directly.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import telemetry
from repro.errors import ClusterError, RequestError
from repro.runtime.executors import mp_context
from repro.runtime.pipeline import InFlightTracker
from repro.serving.config import ClusterConfig
from repro.serving.worker import (
    FatalReply,
    ReadyReply,
    StopReply,
    WaveFailure,
    WaveItem,
    WaveReply,
    WaveRequest,
    WorkerChannel,
    worker_main,
)

__all__ = ["Cluster", "ClusterResult", "ClusterStats", "ReplicaStats", "RequestHandle"]


@dataclass(frozen=True)
class ClusterResult:
    """One served request's result, as returned by the cluster.

    ``logits`` are byte-identical to what a single-process
    :meth:`~repro.session.Session.infer` produces for the same images -
    whichever replica served the request and whatever wave it was coalesced
    into.
    """

    request_id: int
    replica: int
    logits: np.ndarray
    images: int
    #: Worker-side wall-clock of the wave that served this request.
    wall_s: float
    #: Parent-side latency from submit to settle.
    latency_s: float

    @property
    def predictions(self) -> np.ndarray:
        """Argmax class per image."""
        return np.argmax(self.logits, axis=1)


@dataclass
class RequestHandle:
    """Handle of one in-flight cluster request (mirrors ``PendingRequest``)."""

    request_id: int
    replica: int
    _future: Future
    _submitted_at: float

    def done(self) -> bool:
        """Whether the request has finished (successfully or not)."""
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> ClusterResult:
        """Block until the request completes and return its result.

        Raises :class:`~repro.errors.RequestError` if the request failed on
        (or died with) its replica.
        """
        return self._future.result(timeout)


@dataclass(frozen=True)
class ReplicaStats:
    """One replica's serving counters and residency delta."""

    replica: int
    alive: bool
    requests: int
    failures: int
    in_flight: int
    dispatches: int
    max_in_flight: int
    #: AP lease events since this replica's deploy barrier (0 == all-warm).
    cold_leases: int
    #: CAM reprogram events since the deploy barrier.
    cold_reprograms: int
    warm_hits: int
    aps_pinned: int
    tile_programs: int


@dataclass(frozen=True)
class ClusterStats:
    """Cluster-wide serving statistics (per-replica breakdown included)."""

    replicas: Tuple[ReplicaStats, ...]

    @property
    def live_replicas(self) -> int:
        """Replicas whose worker process is still running."""
        return sum(1 for stats in self.replicas if stats.alive)

    @property
    def requests(self) -> int:
        """Requests served successfully across all replicas."""
        return sum(stats.requests for stats in self.replicas)

    @property
    def failures(self) -> int:
        """Requests failed across all replicas."""
        return sum(stats.failures for stats in self.replicas)

    @property
    def cold_leases(self) -> int:
        """Post-deploy AP lease events across all replicas (0 == warm)."""
        return sum(stats.cold_leases for stats in self.replicas)

    @property
    def all_warm(self) -> bool:
        """Whether every replica served strictly from residency."""
        return all(
            stats.cold_leases == 0 and stats.cold_reprograms == 0
            for stats in self.replicas
        )


class _Replica:
    """Parent-side state of one worker replica."""

    def __init__(self, replica_id: int, process, channel: WorkerChannel, response):
        self.replica_id = replica_id
        self.process = process
        self.channel = channel
        self.response = response
        self.ready = threading.Event()
        self.ready_info: Optional[ReadyReply] = None
        self.fatal: Optional[FatalReply] = None
        self.stopped = False
        self.dead = False
        #: Residency counters at the deploy barrier (the warm baseline).
        self.baseline_leases = 0
        self.baseline_reprograms = 0
        #: Latest counters seen in any reply.
        self.lease_events = 0
        self.reprogram_events = 0
        self.warm_hits = 0
        self.requests = 0
        self.failures = 0
        self.pending: Dict[int, RequestHandle] = {}
        self.reader: Optional[threading.Thread] = None

    @property
    def alive(self) -> bool:
        return not self.dead and self.process.is_alive()

    def observe(self, residency) -> None:
        self.lease_events = residency.lease_events
        self.reprogram_events = residency.reprogram_events
        self.warm_hits = residency.warm_hits

    @property
    def cold_leases(self) -> int:
        return self.lease_events - self.baseline_leases

    @property
    def cold_reprograms(self) -> int:
        return self.reprogram_events - self.baseline_reprograms


class Cluster:
    """Data-parallel serving: one compiled plan, N resident worker replicas.

    Mirrors the :class:`~repro.session.Session` surface (``start`` plays the
    role of ``compile``+``deploy``; ``submit``/``gather``/``infer``/``stats``
    /``close`` carry over), usable directly or under the asyncio
    :class:`~repro.serving.frontend.Frontend`::

        with Cluster(ClusterConfig(model="vgg9", replicas=4)) as cluster:
            cluster.start()
            handles = [cluster.submit(images) for images in requests]
            results = cluster.gather()
    """

    def __init__(self, config: Optional[ClusterConfig] = None, **overrides) -> None:
        if config is None:
            config = ClusterConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.config = config
        self.started = False
        self.closed = False
        self.model = None
        self.input_shape: Optional[tuple] = None
        self.compiled = None
        #: Compile-cache witness from the one parent-process compile
        #: (``"off"``/``"miss"``/``"hit"``, see ``REPRO_COMPILE_CACHE``).
        self.compile_cache_status: str = "off"
        self._replicas: List[_Replica] = []
        self._lock = threading.Lock()
        self._next_request = 0
        self._round_robin = 0
        self._tracker = InFlightTracker()
        self._submitted: List[RequestHandle] = []
        self._latencies_s: List[float] = []
        self._owns_tracer = config.trace_enabled and not telemetry.enabled()
        self._tracer: Optional[telemetry.Tracer] = (
            telemetry.install() if config.trace_enabled else None
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Cluster":
        """Compile once, fork the replicas, wait for every deploy barrier."""
        with self._lock:
            if self.closed:
                raise ClusterError("cluster is closed")
            if self.started:
                raise ClusterError("cluster is already started")
            self.started = True
        try:
            self._compile_artifacts()
            self._spawn_replicas()
            self._await_ready()
        except BaseException:
            self.close()
            raise
        return self

    def _compile_artifacts(self) -> None:
        """Compile the network once in the parent process.

        Replicas adopt these artifacts (inherited for free under fork)
        instead of compiling ``replicas`` times.
        """
        from repro.session import Session

        with telemetry.span(
            "cluster.compile",
            category="serving",
            model=self.config.display_name,
            replicas=self.config.replicas,
        ):
            scratch = Session(self.config.session_config())
            try:
                scratch.compile()
                self.model = scratch.model
                self.input_shape = scratch.input_shape
                self.compiled = scratch.compiled
                self.compile_cache_status = scratch.compile_cache_status
            finally:
                scratch.close()

    def _spawn_replicas(self) -> None:
        context = mp_context()
        artifacts = (self.model, self.input_shape, self.compiled)
        # A process pool inside a daemonic process is not allowed, so only
        # serial/thread executors get daemon workers (the safety net that
        # reaps replicas if the parent dies without close()).
        daemon = self.config.executor != "parallel"
        for index in range(self.config.replicas):
            request_recv, request_send = context.Pipe(duplex=False)
            response_recv, response_send = context.Pipe(duplex=False)
            process = context.Process(
                target=worker_main,
                args=(index, self.config, artifacts, request_recv, response_send),
                name=f"repro-replica-{index}",
                daemon=daemon,
            )
            process.start()
            # Close the parent's copy of the worker-side ends so the pipes
            # hold exactly one writer/reader per direction.
            request_recv.close()
            response_send.close()
            replica = _Replica(
                index, process, WorkerChannel(process, request_send), response_recv
            )
            replica.reader = threading.Thread(
                target=self._read_replies,
                args=(replica,),
                name=f"repro-replica-{index}-reader",
                daemon=True,
            )
            replica.reader.start()
            self._replicas.append(replica)

    def _await_ready(self) -> None:
        deadline = time.monotonic() + self.config.start_timeout_s
        for replica in self._replicas:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not replica.ready.wait(remaining):
                raise ClusterError(
                    f"replica {replica.replica_id} missed the deploy barrier "
                    f"after {self.config.start_timeout_s:.0f}s"
                )
            if replica.fatal is not None:
                raise ClusterError(
                    f"replica {replica.replica_id} failed to deploy: "
                    f"{replica.fatal.cause}\n{replica.fatal.detail}"
                )
            if replica.ready_info is None:
                raise ClusterError(
                    f"replica {replica.replica_id} died before its deploy "
                    f"barrier (exit code {replica.channel.exitcode})"
                )

    # ------------------------------------------------------------------
    # Reply pump (one reader thread per replica)
    # ------------------------------------------------------------------
    def _read_replies(self, replica: _Replica) -> None:
        """Pump one replica's reply pipe until it stops or dies.

        Polling (instead of blocking on a raw ``recv``) lets the reader
        notice a dead worker even while sibling replicas - forked later -
        still hold inherited copies of this pipe's write end open.
        """
        connection = replica.response
        while True:
            try:
                if connection.poll(0.1):
                    self._dispatch_reply(replica, connection.recv())
                    continue
            except (EOFError, OSError):
                break
            if replica.stopped:
                break
            if not replica.process.is_alive():
                # Drain anything the worker flushed before dying.
                try:
                    while connection.poll(0):
                        self._dispatch_reply(replica, connection.recv())
                except (EOFError, OSError):
                    pass
                break
        self._mark_dead(replica)

    def _dispatch_reply(self, replica: _Replica, message) -> None:
        spans = getattr(message, "spans", ())
        if spans and self._tracer is not None:
            self._tracer.absorb(tuple(spans))
        if isinstance(message, ReadyReply):
            replica.ready_info = message
            replica.baseline_leases = message.residency.lease_events
            replica.baseline_reprograms = message.residency.reprogram_events
            replica.observe(message.residency)
            replica.ready.set()
        elif isinstance(message, FatalReply):
            replica.fatal = message
            replica.ready.set()
        elif isinstance(message, WaveReply):
            replica.observe(message.residency)
            for reply in message.replies:
                handle = self._take_pending(replica, reply.request_id)
                if handle is None:
                    continue
                latency = time.monotonic() - handle._submitted_at
                with self._lock:
                    replica.requests += 1
                    self._latencies_s.append(latency)
                handle._future.set_result(
                    ClusterResult(
                        request_id=reply.request_id,
                        replica=replica.replica_id,
                        logits=reply.logits,
                        images=reply.images,
                        wall_s=reply.wall_s,
                        latency_s=latency,
                    )
                )
        elif isinstance(message, WaveFailure):
            replica.observe(message.residency)
            for request_id in message.request_ids:
                handle = self._take_pending(replica, request_id)
                if handle is None:
                    continue
                with self._lock:
                    replica.failures += 1
                handle._future.set_exception(
                    RequestError(
                        f"request {request_id} failed on replica "
                        f"{replica.replica_id}: {message.cause}",
                        request_id=request_id,
                        replica=replica.replica_id,
                        cause=message.cause,
                    )
                )
        elif isinstance(message, StopReply):
            replica.observe(message.residency)
            replica.stopped = True

    def _take_pending(
        self, replica: _Replica, request_id: int
    ) -> Optional[RequestHandle]:
        with self._lock:
            handle = replica.pending.pop(request_id, None)
        if handle is not None:
            self._tracker.exit(replica.replica_id)
        return handle

    def _mark_dead(self, replica: _Replica) -> None:
        """Fail the dead replica's in-flight requests; survivors keep serving."""
        replica.dead = True
        replica.ready.set()
        if not replica.process.is_alive():
            # Reap the corpse so the failure message carries the exit code.
            replica.process.join(0.2)
        with self._lock:
            pending = list(replica.pending.items())
            replica.pending.clear()
        graceful = replica.stopped
        for request_id, handle in pending:
            self._tracker.exit(replica.replica_id)
            with self._lock:
                replica.failures += 1
            cause = (
                "worker stopped before serving the request"
                if graceful
                else f"worker process died (exit code {replica.channel.exitcode})"
            )
            handle._future.set_exception(
                RequestError(
                    f"request {request_id} lost: {cause}",
                    request_id=request_id,
                    replica=replica.replica_id,
                    cause=cause,
                )
            )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _normalize(self, images) -> np.ndarray:
        batch = np.asarray(images)
        if self.input_shape is not None and batch.ndim == len(self.input_shape):
            batch = batch[np.newaxis]
        return batch

    def _live_replicas(self) -> List[_Replica]:
        return [replica for replica in self._replicas if replica.alive]

    def _pick_replica(self) -> _Replica:
        live = self._live_replicas()
        if not live:
            raise ClusterError("no live replicas (all workers have exited)")
        if self.config.routing == "least-loaded":
            loads = self._tracker.trace()
            return min(
                live,
                key=lambda replica: (
                    loads[replica.replica_id].in_flight
                    if replica.replica_id in loads
                    else 0,
                    replica.replica_id,
                ),
            )
        with self._lock:
            choice = live[self._round_robin % len(live)]
            self._round_robin += 1
        return choice

    def submit_wave(
        self,
        batches: Sequence[np.ndarray],
        *,
        replica: Optional[int] = None,
    ) -> List[RequestHandle]:
        """Route one continuous-batching wave of requests to a replica.

        The wave is served in a single resident pass on the chosen replica;
        each request still gets its own handle (and its own typed failure,
        if the wave dies).  An explicit ``replica`` pins the wave; otherwise
        the configured routing policy picks among live replicas.
        """
        if not batches:
            return []
        with self._lock:
            if self.closed:
                raise ClusterError("cluster is closed")
            if not self.started:
                raise ClusterError("cluster is not started; call start() first")
        if replica is not None:
            if not 0 <= replica < len(self._replicas):
                raise ClusterError(f"no such replica: {replica}")
            target = self._replicas[replica]
            if not target.alive:
                raise ClusterError(f"replica {replica} is not alive")
        else:
            target = self._pick_replica()
        items: List[WaveItem] = []
        handles: List[RequestHandle] = []
        now = time.monotonic()
        with self._lock:
            for images in batches:
                request_id = self._next_request
                self._next_request += 1
                handle = RequestHandle(
                    request_id=request_id,
                    replica=target.replica_id,
                    _future=Future(),
                    _submitted_at=now,
                )
                items.append(
                    WaveItem(
                        request_id=request_id, images=self._normalize(images)
                    )
                )
                target.pending[request_id] = handle
                handles.append(handle)
                self._submitted.append(handle)
        for _ in handles:
            self._tracker.enter(target.replica_id)
        try:
            target.channel.send_request(WaveRequest(items=tuple(items)))
        except (OSError, ValueError, BrokenPipeError) as error:
            # The replica died between routing and send: fail this wave's
            # requests (the reader thread reaps the rest of its pending).
            for handle in handles:
                taken = self._take_pending(target, handle.request_id)
                if taken is None:
                    continue
                with self._lock:
                    target.failures += 1
                handle._future.set_exception(
                    RequestError(
                        f"request {handle.request_id} could not reach replica "
                        f"{target.replica_id}: {error!r}",
                        request_id=handle.request_id,
                        replica=target.replica_id,
                        cause=repr(error),
                    )
                )
        return handles

    def submit(
        self, images, *, replica: Optional[int] = None
    ) -> RequestHandle:
        """Submit one request (a wave of one); returns its handle."""
        return self.submit_wave([images], replica=replica)[0]

    def infer(self, images) -> ClusterResult:
        """Submit one request and block for its result."""
        handle = self.submit(images)
        try:
            return handle.result(self.config.request_timeout_s)
        finally:
            with self._lock:
                if handle in self._submitted:
                    self._submitted.remove(handle)

    def gather(
        self,
        timeout: Optional[float] = None,
        *,
        return_exceptions: bool = False,
    ) -> List[Union[ClusterResult, RequestError]]:
        """Collect every outstanding request, in submission order.

        With ``return_exceptions`` each failed request yields its typed
        :class:`~repro.errors.RequestError` in place; otherwise the first
        failure is raised *after* every outstanding request has settled, so
        a partial failure never strands the survivors' results.
        """
        if timeout is None:
            timeout = self.config.request_timeout_s
        with self._lock:
            pending, self._submitted = self._submitted, []
        outcomes: List[Union[ClusterResult, RequestError]] = []
        first_error: Optional[BaseException] = None
        for handle in pending:
            try:
                outcomes.append(handle.result(timeout))
            except RequestError as error:
                outcomes.append(error)
                if first_error is None:
                    first_error = error
        if first_error is not None and not return_exceptions:
            raise first_error
        return outcomes

    def drain(self, timeout: Optional[float] = None) -> None:
        """Wait for every in-flight request to settle (without raising)."""
        if timeout is None:
            timeout = self.config.request_timeout_s
        with self._lock:
            pending = list(self._submitted)
        for replica in self._replicas:
            with self._lock:
                pending.extend(replica.pending.values())
        deadline = None if timeout is None else time.monotonic() + timeout
        for handle in pending:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                handle._future.exception(remaining)
            except TimeoutError:
                break
            except BaseException:  # noqa: BLE001 - drain never raises
                continue

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> ClusterStats:
        """Per-replica serving counters and residency deltas."""
        loads = self._tracker.trace()
        replicas = []
        for replica in self._replicas:
            load = loads.get(replica.replica_id)
            info = replica.ready_info
            replicas.append(
                ReplicaStats(
                    replica=replica.replica_id,
                    alive=replica.alive,
                    requests=replica.requests,
                    failures=replica.failures,
                    in_flight=load.in_flight if load else 0,
                    dispatches=load.dispatches if load else 0,
                    max_in_flight=load.max_in_flight if load else 0,
                    cold_leases=replica.cold_leases,
                    cold_reprograms=replica.cold_reprograms,
                    warm_hits=replica.warm_hits,
                    aps_pinned=info.aps_pinned if info else 0,
                    tile_programs=info.tile_programs if info else 0,
                )
            )
        return ClusterStats(replicas=tuple(replicas))

    def metrics_registry(self, registry=None):
        """Mirror cluster counters into a metrics registry (flat BENCH keys)."""
        from repro.telemetry.metrics import MetricsRegistry, record_request_latencies

        registry = registry if registry is not None else MetricsRegistry()
        stats = self.stats()
        registry.gauge("replicas", "configured worker replicas").set(
            len(self._replicas)
        )
        registry.gauge("replicas_live", "replicas still serving").set(
            stats.live_replicas
        )
        requests = registry.counter("requests_served", "requests served")
        failures = registry.counter("requests_failed", "requests failed")
        cold = registry.counter(
            "cold_lease_events", "post-deploy AP lease events"
        )
        for replica_stats in stats.replicas:
            if replica_stats.requests:
                requests.inc(replica_stats.requests, replica=replica_stats.replica)
            if replica_stats.failures:
                failures.inc(replica_stats.failures, replica=replica_stats.replica)
            if replica_stats.cold_leases:
                cold.inc(replica_stats.cold_leases, replica=replica_stats.replica)
        with self._lock:
            latencies = list(self._latencies_s)
        record_request_latencies(registry, latencies)
        return registry

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain, stop and join every replica; finalize the cluster trace.

        Graceful and idempotent: stops accepting new requests first, flushes
        in-flight waves, then walks every replica through the channel's
        stop/join ladder - even if an earlier stage raises.  Requests still
        unsettled after the workers are gone fail with a typed
        :class:`~repro.errors.RequestError`.
        """
        with self._lock:
            if self.closed:
                return
            self.closed = True
        try:
            if self.started:
                self.drain()
        finally:
            try:
                for replica in self._replicas:
                    try:
                        replica.channel.close()
                    except Exception:  # noqa: BLE001 - close every replica
                        pass
                for replica in self._replicas:
                    if replica.reader is not None:
                        replica.reader.join(5.0)
                    self._mark_dead(replica)
            finally:
                self._finalize_trace()

    def _finalize_trace(self) -> None:
        """Flush the cluster-wide Chrome trace and release an owned tracer."""
        tracer = self._tracer
        if tracer is None:
            return
        path = self.config.trace_path
        if path is not None:
            telemetry.write_chrome_trace(path, tracer.events())
        if self._owns_tracer and telemetry.get_tracer() is tracer:
            telemetry.uninstall()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "started" if self.started else "created"
        return (
            f"<Cluster {self.config.display_name!r} "
            f"replicas={self.config.replicas} state={state}>"
        )
