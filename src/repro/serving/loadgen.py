"""Open-loop load generation for the cluster front door.

The serving benchmark and ``repro cluster`` drive the asyncio
:class:`~repro.serving.frontend.Frontend` with an **open-loop** Poisson
arrival process: request start times are drawn up front from an exponential
inter-arrival distribution at the offered QPS and honored regardless of how
fast the cluster responds - exactly the regime where admission control and
continuous batching earn their keep (a closed loop self-throttles and can
never overload the queue).  Arrivals, like every workload in this repo, are
seeded and deterministic.

:func:`run_load` is the sync entry point: it owns the event loop, opens a
front door over a started cluster, replays the schedule, and folds the
outcome into a :class:`LoadReport` (admitted/rejected/failed counts and
latency percentiles in the flat BENCH key schema).  :func:`saturate` is the
closed-loop companion used by the throughput gate: it measures the
cluster's saturated QPS by keeping every replica busy with back-to-back
waves, no arrival schedule at all.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import AdmissionError, ClusterError, RequestError
from repro.serving.cluster import Cluster
from repro.serving.frontend import Frontend
from repro.utils.rng import RngLike, make_rng

__all__ = ["LoadReport", "poisson_arrivals", "run_load", "saturate"]


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one open-loop load run against the front door."""

    offered_qps: float
    duration_s: float
    requests: int
    admitted: int
    rejected: int
    completed: int
    failed: int
    wall_s: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    waves: int
    mean_wave_size: float

    @property
    def achieved_qps(self) -> float:
        """Requests completed per second of wall-clock."""
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def dropped(self) -> int:
        """Admitted requests that did not complete (typed failures)."""
        return self.failed

    def to_metrics(self) -> Dict[str, Any]:
        """Flatten to the BENCH_*.json key schema."""
        return {
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "duration_s": self.duration_s,
            "wall_s": self.wall_s,
            "requests": self.requests,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "waves": self.waves,
            "mean_wave_size": self.mean_wave_size,
        }


def poisson_arrivals(
    qps: float, duration_s: float, rng: RngLike = None
) -> List[float]:
    """Deterministic Poisson arrival offsets (seconds) for an open-loop run."""
    if qps <= 0:
        raise ClusterError(f"qps must be > 0, got {qps}")
    if duration_s <= 0:
        raise ClusterError(f"duration_s must be > 0, got {duration_s}")
    generator = make_rng(rng)
    arrivals: List[float] = []
    clock = 0.0
    while True:
        clock += float(generator.exponential(1.0 / qps))
        if clock >= duration_s:
            return arrivals
        arrivals.append(clock)


def _percentiles(latencies_s: List[float]) -> Dict[str, float]:
    if not latencies_s:
        return {"p50": 0.0, "p99": 0.0, "mean": 0.0}
    samples = np.asarray(latencies_s) * 1e3
    return {
        "p50": float(np.percentile(samples, 50)),
        "p99": float(np.percentile(samples, 99)),
        "mean": float(np.mean(samples)),
    }


async def _run_load_async(
    cluster: Cluster,
    *,
    qps: float,
    duration_s: float,
    images_per_request: int,
    rng: RngLike,
) -> LoadReport:
    arrival_rng = make_rng(rng)
    arrivals = poisson_arrivals(qps, duration_s, arrival_rng)
    if cluster.input_shape is None:
        raise ClusterError("cluster is not started; call start() first")
    shape = (images_per_request,) + tuple(cluster.input_shape)
    # Per-request images are pre-drawn so the workload is a pure function
    # of the seed - independent of arrival jitter and replica routing.
    workload = [
        arrival_rng.uniform(0.0, 1.0, size=shape) for _ in arrivals
    ]
    latencies_s: List[float] = []
    counters = {"rejected": 0, "failed": 0, "completed": 0}

    async def one(frontend: Frontend, images: np.ndarray) -> None:
        started = time.monotonic()
        try:
            await frontend.request(images)
        except AdmissionError:
            counters["rejected"] += 1
        except RequestError:
            counters["failed"] += 1
        else:
            counters["completed"] += 1
            latencies_s.append(time.monotonic() - started)

    started = time.monotonic()
    async with Frontend(cluster) as frontend:
        tasks = []
        for offset, images in zip(arrivals, workload):
            delay = started + offset - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.ensure_future(one(frontend, images)))
        if tasks:
            await asyncio.gather(*tasks)
        waves = frontend.waves
        wave_sizes = list(frontend._wave_sizes)
    wall = time.monotonic() - started
    stats = _percentiles(latencies_s)
    return LoadReport(
        offered_qps=qps,
        duration_s=duration_s,
        requests=len(arrivals),
        admitted=len(arrivals) - counters["rejected"],
        rejected=counters["rejected"],
        completed=counters["completed"],
        failed=counters["failed"],
        wall_s=wall,
        latency_p50_ms=stats["p50"],
        latency_p99_ms=stats["p99"],
        latency_mean_ms=stats["mean"],
        waves=waves,
        mean_wave_size=(
            float(np.mean(wave_sizes)) if wave_sizes else 0.0
        ),
    )


def run_load(
    cluster: Cluster,
    *,
    qps: float,
    duration_s: float,
    images_per_request: int = 1,
    rng: RngLike = None,
) -> LoadReport:
    """Replay a seeded open-loop Poisson schedule against a started cluster."""
    return asyncio.run(
        _run_load_async(
            cluster,
            qps=qps,
            duration_s=duration_s,
            images_per_request=images_per_request,
            rng=rng,
        )
    )


def saturate(
    cluster: Cluster,
    *,
    requests: int,
    images_per_request: int = 1,
    rng: RngLike = None,
    waves_of: Optional[int] = None,
) -> float:
    """Measure saturated throughput: serve ``requests`` flat-out, return QPS.

    Submits everything up front (waves of ``waves_of`` requests, default
    the cluster's ``max_wave``) so every replica stays busy, then divides
    by the wall-clock of the full drain.  This is the number the benchmark
    gate scales against replica count.
    """
    if requests <= 0:
        raise ClusterError(f"requests must be > 0, got {requests}")
    if cluster.input_shape is None:
        raise ClusterError("cluster is not started; call start() first")
    generator = make_rng(rng)
    shape = (images_per_request,) + tuple(cluster.input_shape)
    workload = [
        generator.uniform(0.0, 1.0, size=shape) for _ in range(requests)
    ]
    wave = waves_of or cluster.config.max_wave
    started = time.monotonic()
    for base in range(0, requests, wave):
        cluster.submit_wave(workload[base : base + wave])
    outcomes = cluster.gather(return_exceptions=True)
    wall = time.monotonic() - started
    completed = sum(1 for outcome in outcomes if not isinstance(outcome, Exception))
    if completed < requests:
        raise ClusterError(
            f"saturation run lost {requests - completed} of {requests} requests"
        )
    return completed / wall if wall > 0 else 0.0
