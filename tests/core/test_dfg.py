"""Tests for channel DFG construction."""

import numpy as np
import pytest

from repro.core.cse import eliminate_common_subexpressions
from repro.core.dfg import build_channel_dfg
from repro.core.folding import fold_weight_slice
from repro.errors import CompilationError


class TestBuildChannelDFG:
    def test_simple_row_chain(self):
        rows = fold_weight_slice(np.array([[1, 1, 1]]))
        dfg = build_channel_dfg(rows, activation_bits=4)
        assert dfg.num_operations == 2
        assert len(dfg.input_nodes) == 3
        node_id, sign = dfg.outputs[0]
        assert sign == 1
        assert dfg.nodes[node_id].value_range.hi == 45

    def test_all_negative_row_carries_sign(self):
        rows = fold_weight_slice(np.array([[-1, -1, 0]]))
        dfg = build_channel_dfg(rows, activation_bits=4)
        node_id, sign = dfg.outputs[0]
        assert sign == -1
        # The stored node holds the positive magnitude x0 + x1.
        assert dfg.nodes[node_id].op == "add"
        assert dfg.nodes[node_id].value_range.hi == 30

    def test_mixed_sign_row_uses_sub(self):
        rows = fold_weight_slice(np.array([[1, -1, 0]]))
        dfg = build_channel_dfg(rows, activation_bits=4)
        node_id, sign = dfg.outputs[0]
        assert sign == 1
        assert dfg.nodes[node_id].op == "sub"
        assert dfg.nodes[node_id].value_range == dfg.nodes[node_id].value_range

    def test_empty_row_maps_to_none(self):
        rows = fold_weight_slice(np.array([[0, 0, 0], [1, 0, 0]]))
        dfg = build_channel_dfg(rows, activation_bits=4)
        assert dfg.outputs[0] is None
        node_id, sign = dfg.outputs[1]
        assert dfg.nodes[node_id].kind == "input"

    def test_single_negative_term_row(self):
        rows = fold_weight_slice(np.array([[0, -1, 0]]))
        dfg = build_channel_dfg(rows, activation_bits=4)
        node_id, sign = dfg.outputs[0]
        assert sign == -1
        assert dfg.nodes[node_id].kind == "input"

    def test_with_cse_definitions(self, paper_eq1_matrix):
        rows = fold_weight_slice(paper_eq1_matrix)
        cse = eliminate_common_subexpressions(rows)
        dfg = build_channel_dfg(cse.rows, definitions=cse, activation_bits=4)
        # The DFG op count equals the Eq. 1 operation count (7).
        assert dfg.num_operations == cse.total_operations == 7
        assert set(dfg.temp_nodes) == {d.temp.index for d in cse.definitions}

    def test_widths_grow_towards_outputs(self, paper_eq1_matrix):
        rows = fold_weight_slice(paper_eq1_matrix)
        dfg = build_channel_dfg(rows, activation_bits=4)
        input_width = next(iter(dfg.nodes.values())).width
        assert dfg.max_output_width() >= input_width

    def test_activation_bits_change_widths(self, paper_eq1_matrix):
        rows = fold_weight_slice(paper_eq1_matrix)
        narrow = build_channel_dfg(rows, activation_bits=4).max_output_width()
        wide = build_channel_dfg(rows, activation_bits=8).max_output_width()
        assert wide == narrow + 4

    def test_op_width_histogram_counts_all_ops(self, paper_eq1_matrix):
        rows = fold_weight_slice(paper_eq1_matrix)
        dfg = build_channel_dfg(rows, activation_bits=4)
        histogram = dfg.op_width_histogram()
        assert sum(histogram.values()) == dfg.num_operations

    def test_use_counts(self):
        rows = fold_weight_slice(np.array([[1, 1, 0], [1, 1, 0]]))
        cse = eliminate_common_subexpressions(rows)
        dfg = build_channel_dfg(cse.rows, definitions=cse, activation_bits=4)
        counts = dfg.use_counts()
        temp_node = dfg.temp_nodes[0]
        assert counts[temp_node] == 2  # consumed by both outputs

    def test_signed_activations(self):
        rows = fold_weight_slice(np.array([[1, 1, 0]]))
        dfg = build_channel_dfg(rows, activation_bits=4, signed_activations=True)
        node_id, _ = dfg.outputs[0]
        assert dfg.nodes[node_id].value_range.lo == -16

    def test_duplicate_node_id_rejected(self):
        from repro.core.dfg import ChannelDFG, DFGNode

        dfg = ChannelDFG()
        dfg.add_node(DFGNode(node_id=0, kind="input"))
        with pytest.raises(CompilationError):
            dfg.add_node(DFGNode(node_id=0, kind="input"))
