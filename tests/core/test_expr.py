"""Tests for signed linear expressions."""

import pytest

from repro.core.expr import LinearExpression, Term
from repro.errors import CompilationError


class TestTerm:
    def test_symbols(self):
        assert Term.input(3).symbol == "x3"
        assert Term.temp(1).symbol == "t1"

    def test_ordering(self):
        assert Term.input(1) < Term.input(2)
        assert sorted([Term.temp(0), Term.input(5)])[0].kind == "input"

    def test_invalid(self):
        with pytest.raises(CompilationError):
            Term("weight", 0)
        with pytest.raises(CompilationError):
            Term.input(-1)


class TestLinearExpression:
    def test_add_and_query_terms(self):
        expr = LinearExpression([(Term.input(0), 1), (Term.input(3), -1)])
        assert len(expr) == 2
        assert expr.sign_of(Term.input(3)) == -1
        assert Term.input(0) in expr
        assert Term.input(1) not in expr

    def test_opposite_signs_cancel(self):
        expr = LinearExpression([(Term.input(0), 1)])
        expr.add_term(Term.input(0), -1)
        assert len(expr) == 0

    def test_same_sign_twice_rejected(self):
        expr = LinearExpression([(Term.input(0), 1)])
        with pytest.raises(CompilationError):
            expr.add_term(Term.input(0), 1)

    def test_invalid_sign_rejected(self):
        with pytest.raises(CompilationError):
            LinearExpression([(Term.input(0), 2)])

    def test_remove_term(self):
        expr = LinearExpression([(Term.input(0), -1)])
        assert expr.remove_term(Term.input(0)) == -1
        with pytest.raises(CompilationError):
            expr.remove_term(Term.input(0))

    def test_num_operations(self):
        assert LinearExpression().num_operations == 0
        assert LinearExpression([(Term.input(0), 1)]).num_operations == 0
        expr = LinearExpression([(Term.input(k), 1) for k in range(4)])
        assert expr.num_operations == 3

    def test_copy_is_independent(self):
        expr = LinearExpression([(Term.input(0), 1)])
        clone = expr.copy()
        clone.add_term(Term.input(1), 1)
        assert len(expr) == 1
        assert len(clone) == 2

    def test_repr(self):
        expr = LinearExpression([(Term.input(0), 1), (Term.input(1), -1)])
        assert repr(expr) == "x0 - x1"
        assert repr(LinearExpression()) == "0"
        negated = LinearExpression([(Term.input(2), -1)])
        assert repr(negated) == "-x2"


class TestSubstitutePair:
    def _expr(self):
        return LinearExpression(
            [(Term.input(0), 1), (Term.input(1), -1), (Term.input(2), 1)]
        )

    def test_positive_polarity(self):
        expr = self._expr()
        polarity = expr.substitute_pair(
            (Term.input(0), 1), (Term.input(1), -1), Term.temp(0)
        )
        assert polarity == 1
        assert Term.temp(0) in expr
        assert len(expr) == 2

    def test_negative_polarity(self):
        expr = LinearExpression([(Term.input(0), -1), (Term.input(1), 1)])
        polarity = expr.substitute_pair(
            (Term.input(0), 1), (Term.input(1), -1), Term.temp(0)
        )
        assert polarity == -1
        assert expr.sign_of(Term.temp(0)) == -1

    def test_mismatched_signs_not_substituted(self):
        expr = self._expr()
        polarity = expr.substitute_pair(
            (Term.input(0), 1), (Term.input(1), 1), Term.temp(0)
        )
        assert polarity is None
        assert len(expr) == 3

    def test_missing_term_not_substituted(self):
        expr = self._expr()
        assert expr.substitute_pair(
            (Term.input(5), 1), (Term.input(1), -1), Term.temp(0)
        ) is None
