"""Tests for DFG scheduling (placement + column allocation)."""

import numpy as np
import pytest

from repro.core.cse import eliminate_common_subexpressions
from repro.core.dfg import build_channel_dfg
from repro.core.folding import fold_weight_slice
from repro.core.scheduling import schedule_dfg
from repro.errors import CapacityError


def build_dfg(matrix, cse=True, activation_bits=4):
    rows = fold_weight_slice(np.asarray(matrix))
    definitions = None
    working = rows
    if cse:
        definitions = eliminate_common_subexpressions(rows)
        working = definitions.rows
    return build_channel_dfg(working, definitions=definitions, activation_bits=activation_bits)


class TestPlacement:
    def test_every_op_scheduled_once(self, paper_eq1_matrix):
        dfg = build_dfg(paper_eq1_matrix)
        schedule = schedule_dfg(dfg)
        assert len(schedule.ops) == dfg.num_operations
        assert schedule.num_inplace + schedule.num_outofplace == dfg.num_operations

    def test_inplace_used_when_operand_dies(self):
        # x0 + x1 + x2: the chain can overwrite its intermediate value.
        dfg = build_dfg([[1, 1, 1]], cse=False)
        schedule = schedule_dfg(dfg)
        assert schedule.num_inplace >= 1

    def test_prefer_inplace_false_forces_out_of_place(self, paper_eq1_matrix):
        dfg = build_dfg(paper_eq1_matrix)
        schedule = schedule_dfg(dfg, prefer_inplace=False)
        assert schedule.num_inplace == 0

    def test_shared_value_not_overwritten(self):
        # The temporary t0 = x0+x1 is used by both outputs: the first consumer
        # must not destroy it.
        dfg = build_dfg([[1, 1, 1], [1, 1, -1]])
        schedule = schedule_dfg(dfg)
        for op in schedule.ops:
            if op.inplace:
                overwritten = op.overwrites
                assert overwritten is not None
                # the overwritten node must not be used by any later op
                position = schedule.ops.index(op)
                for later in schedule.ops[position + 1 :]:
                    assert overwritten not in (later.lhs, later.rhs)

    def test_outputs_never_overwritten(self, paper_eq1_matrix):
        dfg = build_dfg(paper_eq1_matrix)
        schedule = schedule_dfg(dfg)
        output_nodes = {ref[0] for ref in dfg.outputs.values() if ref is not None}
        for op in schedule.ops:
            if op.inplace and op.overwrites in output_nodes:
                pytest.fail("an output value was overwritten in place")


class TestColumnAllocation:
    def test_columns_start_after_carry(self, paper_eq1_matrix):
        dfg = build_dfg(paper_eq1_matrix)
        schedule = schedule_dfg(dfg, first_column=1)
        assert min(schedule.slot_column.values()) >= 1

    def test_no_live_range_conflicts(self, paper_eq1_matrix):
        """Two values sharing a column must never be live at the same time."""
        dfg = build_dfg(paper_eq1_matrix)
        schedule = schedule_dfg(dfg)
        # Reconstruct per-node live ranges.
        last_use = {}
        for position, op in enumerate(schedule.ops):
            for operand in (op.lhs, op.rhs):
                last_use[operand] = position
        for ref in dfg.outputs.values():
            if ref is not None:
                last_use[ref[0]] = len(schedule.ops) + 1
        definition = {}
        for node_id in dfg.input_nodes.values():
            definition[node_id] = -1
        for position, node_id in enumerate(dfg.op_order):
            definition[node_id] = position
        by_column = {}
        for node_id, slot in schedule.slot_of_node.items():
            column = schedule.slot_column[slot]
            by_column.setdefault(column, []).append(
                (slot, definition[node_id], last_use.get(node_id, definition[node_id]))
            )
        for column, intervals in by_column.items():
            slots = {}
            for slot, start, end in intervals:
                slots.setdefault(slot, [start, end])
                slots[slot][0] = min(slots[slot][0], start)
                slots[slot][1] = max(slots[slot][1], end)
            items = list(slots.values())
            for i in range(len(items)):
                for j in range(i + 1, len(items)):
                    a, b = items[i], items[j]
                    overlap = a[0] <= b[1] and b[0] <= a[1]
                    assert not overlap, f"column {column} double-booked"

    def test_capacity_error_when_columns_exhausted(self):
        matrix = np.ones((24, 9), dtype=np.int8)
        dfg = build_dfg(matrix.tolist(), cse=False)
        with pytest.raises(CapacityError):
            schedule_dfg(dfg, usable_columns=4)

    def test_slot_width_covers_all_values(self, paper_eq1_matrix):
        dfg = build_dfg(paper_eq1_matrix)
        schedule = schedule_dfg(dfg)
        for node_id, slot in schedule.slot_of_node.items():
            assert schedule.slot_width[slot] >= dfg.nodes[node_id].width

    def test_num_columns_reasonable(self, paper_eq1_matrix):
        dfg = build_dfg(paper_eq1_matrix)
        schedule = schedule_dfg(dfg)
        # 6 inputs plus a handful of temporaries/outputs at most.
        assert schedule.num_columns <= 16
