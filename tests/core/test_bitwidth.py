"""Tests for value-range / bit-width inference."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bitwidth import ValueRange, accumulate_range, activation_range
from repro.errors import CompilationError, QuantizationError


class TestValueRange:
    def test_add_and_sub(self):
        a = ValueRange(0, 15)
        b = ValueRange(0, 15)
        assert (a + b).hi == 30
        assert (a - b).lo == -15
        assert (-a).lo == -15

    def test_empty_range_rejected(self):
        with pytest.raises(CompilationError):
            ValueRange(5, 4)

    def test_width_examples(self):
        assert ValueRange(0, 15).width == 5  # needs a sign bit in two's complement
        assert ValueRange(-8, 7).width == 4
        assert ValueRange(0, 0).width == 1

    def test_scaled(self):
        assert ValueRange(0, 15).scaled(3) == ValueRange(0, 45)
        with pytest.raises(CompilationError):
            ValueRange(0, 1).scaled(-1)

    def test_union_and_span(self):
        assert ValueRange(-3, 2).union(ValueRange(0, 8)) == ValueRange(-3, 8)
        assert ValueRange(-3, 2).span == 6

    @given(
        st.integers(-100, 100), st.integers(0, 100),
        st.integers(-100, 100), st.integers(0, 100),
    )
    def test_property_add_width_at_most_one_more(self, lo1, d1, lo2, d2):
        a = ValueRange(lo1, lo1 + d1)
        b = ValueRange(lo2, lo2 + d2)
        assert (a + b).width <= max(a.width, b.width) + 1


class TestActivationRange:
    def test_unsigned(self):
        assert activation_range(4) == ValueRange(0, 15)
        assert activation_range(8) == ValueRange(0, 255)

    def test_signed(self):
        assert activation_range(4, signed=True) == ValueRange(-8, 7)

    def test_invalid_bits(self):
        with pytest.raises(QuantizationError):
            activation_range(0)


class TestAccumulateRange:
    def test_mixed_signs(self):
        term = activation_range(4)
        total = accumulate_range(term, positive_terms=3, negative_terms=2)
        assert total == ValueRange(-30, 45)

    def test_width_grows_logarithmically(self):
        term = activation_range(4)
        few = accumulate_range(term, 4, 4).width
        many = accumulate_range(term, 64, 64).width
        assert many == few + 4

    def test_invalid_counts(self):
        with pytest.raises(CompilationError):
            accumulate_range(activation_range(4), -1, 0)
