"""Tests for common-subexpression elimination (experiments E2 and E5)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cse import (
    CSEResult,
    cse_from_weight_slice,
    eliminate_common_subexpressions,
)
from repro.core.expr import LinearExpression, Term
from repro.core.folding import fold_weight_slice, unrolled_op_count
from repro.errors import CompilationError
from repro.nn.ternary import synthetic_ternary_weights


def expand_expression(expression, definitions):
    """Expand an expression back to input-term coefficients (for validation)."""
    coefficients = {}

    def add(term, sign):
        if term.kind == "input":
            coefficients[term.index] = coefficients.get(term.index, 0) + sign
        else:
            definition = definitions[term.index]
            for inner_term, inner_sign in definition.expression:
                add(inner_term, sign * inner_sign)

    for term, sign in expression:
        add(term, sign)
    return coefficients


class TestPaperEquation1:
    def test_reduces_to_seven_operations(self, paper_eq1_matrix):
        """The paper's Eq. 1: the 6x6 ternary MVM costs 7 ops after CSE."""
        rows = fold_weight_slice(paper_eq1_matrix)
        result = eliminate_common_subexpressions(rows)
        assert result.total_operations == 7

    def test_extracts_the_papers_shared_pairs(self, paper_eq1_matrix):
        """x3 - x5 and x0 - x1 are the most frequent patterns and get extracted."""
        rows = fold_weight_slice(paper_eq1_matrix)
        result = eliminate_common_subexpressions(rows)
        extracted = {
            frozenset(
                (term.symbol, sign) for term, sign in definition.expression
            )
            for definition in result.definitions
        }
        assert frozenset({("x3", 1), ("x5", -1)}) in extracted
        assert frozenset({("x0", 1), ("x1", -1)}) in extracted

    def test_rewritten_rows_still_compute_the_matrix(self, paper_eq1_matrix):
        rows = fold_weight_slice(paper_eq1_matrix)
        result = eliminate_common_subexpressions(rows)
        definitions = {d.temp.index: d for d in result.definitions}
        for row_index, row in enumerate(result.rows):
            coefficients = expand_expression(row, definitions)
            for column in range(paper_eq1_matrix.shape[1]):
                assert coefficients.get(column, 0) == paper_eq1_matrix[row_index, column]

    def test_reduction_ratio(self, paper_eq1_matrix):
        rows = fold_weight_slice(paper_eq1_matrix)
        result = eliminate_common_subexpressions(rows)
        assert result.original_operations == 14
        assert result.reduction_ratio == pytest.approx(0.5)


class TestCSEMechanics:
    def test_no_shared_pattern_no_temporaries(self):
        rows = fold_weight_slice(np.array([[1, 0, 0], [0, 1, 0], [0, 0, -1]]))
        result = eliminate_common_subexpressions(rows)
        assert result.num_definitions == 0
        assert result.total_operations == 0

    def test_negated_pattern_counts_as_same(self):
        """x0+x1 in one row and -(x0+x1) in another share one temporary."""
        rows = fold_weight_slice(np.array([[1, 1, 1], [-1, -1, 0]]))
        result = eliminate_common_subexpressions(rows)
        assert result.num_definitions == 1
        assert result.total_operations == 1 + 1 + 0  # t0, row0 uses t0+x2, row1 is -t0

    def test_min_occurrences_threshold(self):
        rows = fold_weight_slice(np.array([[1, 1, 0], [1, 1, 0], [1, 1, 0]]))
        strict = eliminate_common_subexpressions(rows, min_occurrences=4)
        assert strict.num_definitions == 0
        relaxed = eliminate_common_subexpressions(rows, min_occurrences=2)
        assert relaxed.num_definitions == 1

    def test_invalid_min_occurrences(self):
        with pytest.raises(CompilationError):
            eliminate_common_subexpressions([], min_occurrences=1)

    def test_max_temporaries_cap(self, paper_eq1_matrix):
        rows = fold_weight_slice(paper_eq1_matrix)
        result = eliminate_common_subexpressions(rows, max_temporaries=1)
        assert result.num_definitions == 1

    def test_first_temp_index_offset(self):
        rows = fold_weight_slice(np.array([[1, 1], [1, 1]]))
        result = eliminate_common_subexpressions(rows, first_temp_index=10)
        assert result.definitions[0].temp.index == 10

    def test_rejects_rows_with_temps(self):
        rows = [LinearExpression([(Term.temp(0), 1)])]
        with pytest.raises(CompilationError):
            eliminate_common_subexpressions(rows)

    def test_temp_use_counts(self, paper_eq1_matrix):
        rows = fold_weight_slice(paper_eq1_matrix)
        result = eliminate_common_subexpressions(rows)
        counts = result.temp_use_counts()
        assert all(count >= 1 for count in counts.values())

    def test_fused_counts_are_larger(self, paper_eq1_matrix):
        rows = fold_weight_slice(paper_eq1_matrix)
        result = eliminate_common_subexpressions(rows)
        assert result.fused_total_operations >= result.total_operations


class TestCSEFromWeightSlice:
    def test_equivalent_to_expression_path(self, paper_eq1_matrix):
        via_expressions = eliminate_common_subexpressions(
            fold_weight_slice(paper_eq1_matrix)
        )
        via_slice = cse_from_weight_slice(paper_eq1_matrix)
        assert via_slice.total_operations == via_expressions.total_operations
        assert via_slice.num_definitions == via_expressions.num_definitions

    def test_rejects_wrong_rank(self):
        with pytest.raises(CompilationError):
            cse_from_weight_slice(np.zeros(4, dtype=np.int8))

    def test_reduces_ops_on_random_slices(self):
        weight_slice = synthetic_ternary_weights((64, 9), 0.6, rng=0)
        result = cse_from_weight_slice(weight_slice)
        assert result.total_operations <= result.original_operations

    @settings(max_examples=20, deadline=None)
    @given(
        sparsity=st.floats(min_value=0.3, max_value=0.95),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_rewritten_rows_equal_original_matrix(self, sparsity, seed):
        """CSE must never change the computed linear function."""
        weight_slice = synthetic_ternary_weights((12, 9), sparsity, rng=seed)
        result = cse_from_weight_slice(weight_slice)
        definitions = {d.temp.index: d for d in result.definitions}
        for row_index, row in enumerate(result.rows):
            coefficients = expand_expression(row, definitions)
            for column in range(weight_slice.shape[1]):
                assert coefficients.get(column, 0) == weight_slice[row_index, column]

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_property_cse_never_increases_ops(self, seed):
        weight_slice = synthetic_ternary_weights((32, 9), 0.7, rng=seed)
        result = cse_from_weight_slice(weight_slice)
        assert result.total_operations <= result.original_operations
        assert result.fused_total_operations <= unrolled_op_count(weight_slice)
