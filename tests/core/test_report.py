"""Tests for compilation comparison reports."""

import pytest

from repro.core.compiler import CompilerConfig, compile_model
from repro.core.report import compare_configurations
from repro.errors import CompilationError
from repro.nn.stats import ConvLayerSpec
from repro.nn.ternary import synthetic_ternary_weights


def specs():
    return [
        ConvLayerSpec(
            "conv1", synthetic_ternary_weights((16, 4, 3, 3), 0.5, rng=0), 8, 8, 1, 1
        ),
        ConvLayerSpec(
            "conv2", synthetic_ternary_weights((32, 16, 3, 3), 0.5, rng=1), 8, 8, 1, 1
        ),
    ]


class TestCompareConfigurations:
    def test_report_totals(self):
        layer_specs = specs()
        unroll = compile_model(layer_specs, CompilerConfig(enable_cse=False), name="m")
        cse = compile_model(layer_specs, CompilerConfig(enable_cse=True), name="m")
        report = compare_configurations(unroll, cse)
        assert report.baseline_total == unroll.total_ops
        assert report.optimized_total == cse.total_ops
        assert 0.0 <= report.total_reduction < 1.0
        assert len(report.layers) == 2

    def test_text_rendering(self):
        layer_specs = specs()
        unroll = compile_model(layer_specs, CompilerConfig(enable_cse=False), name="m")
        cse = compile_model(layer_specs, CompilerConfig(enable_cse=True), name="m")
        text = compare_configurations(unroll, cse).to_text()
        assert "conv1" in text
        assert "TOTAL" in text

    def test_mean_layer_reduction(self):
        layer_specs = specs()
        unroll = compile_model(layer_specs, CompilerConfig(enable_cse=False), name="m")
        cse = compile_model(layer_specs, CompilerConfig(enable_cse=True), name="m")
        report = compare_configurations(unroll, cse)
        assert 0.0 <= report.mean_layer_reduction <= 1.0

    def test_mismatched_models_rejected(self):
        layer_specs = specs()
        one = compile_model(layer_specs[:1], CompilerConfig(enable_cse=False), name="m")
        two = compile_model(layer_specs, CompilerConfig(enable_cse=True), name="m")
        with pytest.raises(CompilationError):
            compare_configurations(one, two)

    def test_empty_report_degenerate_values(self):
        from repro.core.report import CompilationReport

        report = CompilationReport("m", "a", "b", layers=[])
        assert report.total_reduction == 0.0
        assert report.mean_layer_reduction == 0.0
