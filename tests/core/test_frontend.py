"""Tests for the compiler frontend."""

import pytest

from repro.core.frontend import benchmark_description, specs_for_network, specs_from_model
from repro.nn.models.registry import build_model


class TestSpecsForNetwork:
    def test_vgg9_specs(self):
        specs = specs_for_network("vgg9", rng=0)
        assert len(specs) == 7

    def test_convolutions_only_filter(self):
        specs = specs_for_network("resnet18", convolutions_only=True, rng=0)
        assert len(specs) == 20
        assert all(spec.input_height > 1 or spec.patch_size > 1 for spec in specs)

    def test_sparsity_override(self):
        sparse = specs_for_network("vgg9", sparsity=0.95, rng=0)
        dense = specs_for_network("vgg9", sparsity=0.5, rng=0)
        assert sum(s.nonzero_weights for s in sparse) < sum(s.nonzero_weights for s in dense)


class TestSpecsFromModel:
    def test_matches_registry_path(self):
        model, shape = build_model("vgg9", rng=0)
        specs = specs_from_model(model, shape)
        assert len(specs) == len(specs_for_network("vgg9", rng=0))


class TestBenchmarkDescription:
    def test_labels(self):
        assert benchmark_description("resnet18") == "ResNet18/ImageNet"
        assert benchmark_description("vgg9") == "VGG-9/CIFAR10"
        assert benchmark_description("vgg11") == "VGG-11/CIFAR10"
