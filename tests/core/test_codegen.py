"""Tests for AP code generation (compile_slice end-to-end correctness)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ap.core import AssociativeProcessor
from repro.core.compiler import CompilerConfig, compile_slice
from repro.nn.ternary import synthetic_ternary_weights


def run_slice_on_ap(weight_slice, activations, activation_bits=4, enable_cse=True, rows=None, columns=96):
    """Compile a weight slice, run it on a functional AP, return the outputs."""
    config = CompilerConfig(enable_cse=enable_cse, activation_bits=activation_bits)
    compiled = compile_slice(np.asarray(weight_slice), config)
    num_positions = activations.shape[1]
    rows = rows or max(8, num_positions)
    ap = AssociativeProcessor(rows=rows, columns=columns)
    inputs = {f"x{k}": activations[k] for k in range(activations.shape[0])}
    outputs = ap.run_program(compiled.program, inputs)
    result = np.stack(
        [outputs[f"y{o}"] for o in range(weight_slice.shape[0])], axis=0
    )
    return compiled, result


class TestCompiledSliceCorrectness:
    def test_paper_eq1_matches_reference(self, paper_eq1_matrix, rng):
        activations = rng.integers(0, 16, size=(6, 20))
        compiled, result = run_slice_on_ap(paper_eq1_matrix, activations)
        assert np.array_equal(result, paper_eq1_matrix @ activations)
        assert compiled.program.num_arithmetic_ops == 7

    @pytest.mark.parametrize("enable_cse", [True, False])
    def test_random_slice_matches_reference(self, rng, enable_cse):
        weight_slice = synthetic_ternary_weights((10, 9), 0.6, rng=1)
        activations = rng.integers(0, 16, size=(9, 30))
        _, result = run_slice_on_ap(weight_slice, activations, enable_cse=enable_cse)
        assert np.array_equal(result, weight_slice.astype(np.int64) @ activations)

    def test_8bit_activations(self, rng):
        weight_slice = synthetic_ternary_weights((6, 9), 0.5, rng=2)
        activations = rng.integers(0, 256, size=(9, 12))
        _, result = run_slice_on_ap(weight_slice, activations, activation_bits=8)
        assert np.array_equal(result, weight_slice.astype(np.int64) @ activations)

    def test_all_zero_filter_outputs_zero(self, rng):
        weight_slice = np.zeros((3, 4), dtype=np.int8)
        weight_slice[1, 2] = 1
        activations = rng.integers(0, 16, size=(4, 10))
        _, result = run_slice_on_ap(weight_slice, activations)
        assert np.all(result[0] == 0)
        assert np.all(result[2] == 0)
        assert np.array_equal(result[1], activations[2])

    def test_all_negative_filter(self, rng):
        weight_slice = np.array([[-1, -1, -1, 0]], dtype=np.int8)
        activations = rng.integers(0, 16, size=(4, 10))
        _, result = run_slice_on_ap(weight_slice, activations)
        assert np.array_equal(result, weight_slice.astype(np.int64) @ activations)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 500), sparsity=st.floats(0.2, 0.9))
    def test_property_compiled_slice_is_exact(self, seed, sparsity):
        """Any compiled slice computes exactly the ternary MVM (accuracy claim)."""
        rng = np.random.default_rng(seed)
        weight_slice = synthetic_ternary_weights((6, 6), sparsity, rng=seed)
        activations = rng.integers(0, 16, size=(6, 8))
        _, result = run_slice_on_ap(weight_slice, activations, columns=64)
        assert np.array_equal(result, weight_slice.astype(np.int64) @ activations)


class TestGeneratedProgramStructure:
    def test_instruction_count_matches_statistics(self, paper_eq1_matrix):
        config = CompilerConfig(enable_cse=True, activation_bits=4)
        compiled = compile_slice(paper_eq1_matrix, config)
        assert compiled.program.num_arithmetic_ops == compiled.statistics.dfg_ops

    def test_unroll_has_more_instructions_than_cse(self, rng):
        weight_slice = synthetic_ternary_weights((16, 9), 0.5, rng=5)
        cse = compile_slice(weight_slice, CompilerConfig(enable_cse=True))
        unroll = compile_slice(weight_slice, CompilerConfig(enable_cse=False))
        assert cse.program.num_arithmetic_ops <= unroll.program.num_arithmetic_ops

    def test_inplace_ops_present(self, paper_eq1_matrix):
        compiled = compile_slice(paper_eq1_matrix, CompilerConfig())
        assert compiled.program.num_inplace_ops >= 1

    def test_input_and_output_columns_names(self, paper_eq1_matrix):
        compiled = compile_slice(paper_eq1_matrix, CompilerConfig())
        # x4 is an all-zero weight column in Eq. 1, so it is never loaded.
        assert set(compiled.program.input_columns) == {"x0", "x1", "x2", "x3", "x5"}
        assert set(compiled.program.output_columns) == {f"y{o}" for o in range(6)}

    def test_listing_is_printable(self, paper_eq1_matrix):
        compiled = compile_slice(paper_eq1_matrix, CompilerConfig())
        listing = compiled.program.listing()
        assert "instructions" in listing
