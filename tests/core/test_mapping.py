"""Tests for the CAM mapping model (array counts, channel groups, widths)."""

import numpy as np
import pytest

from repro.arch.config import APConfig, ArchitectureConfig
from repro.core.frontend import specs_for_network
from repro.core.mapping import (
    accumulator_range_for_layer,
    arrays_required,
    map_layer,
)
from repro.errors import MappingError
from repro.nn.stats import ConvLayerSpec
from repro.nn.ternary import synthetic_ternary_weights


def make_spec(cout=8, cin=4, k=3, size=16, stride=1, padding=1, sparsity=0.5, name="layer"):
    weights = synthetic_ternary_weights((cout, cin, k, k), sparsity, rng=0)
    return ConvLayerSpec(name, weights, size, size, stride, padding)


class TestPaperArrayCounts:
    """Experiment E3 structural check: the paper's '# Arrays' column."""

    def test_resnet18_needs_49_arrays(self):
        specs = specs_for_network("resnet18", rng=0)
        assert arrays_required(specs) == 49

    def test_vgg9_needs_4_arrays(self):
        specs = specs_for_network("vgg9", rng=0)
        assert arrays_required(specs) == 4

    def test_vgg11_needs_4_arrays(self):
        specs = specs_for_network("vgg11", rng=0)
        assert arrays_required(specs) == 4


class TestMapLayer:
    def test_row_tiles(self):
        spec = make_spec(size=32)  # 32x32 -> 1024 positions -> 4 tiles of 256
        mapping = map_layer(spec)
        assert mapping.output_positions == 1024
        assert mapping.row_tiles == 4
        assert mapping.row_utilization == pytest.approx(1.0)

    def test_partial_last_tile(self):
        spec = make_spec(size=17, padding=1)  # 17x17=289 -> 2 tiles, last partial
        mapping = map_layer(spec)
        assert mapping.row_tiles == 2
        assert mapping.rows_used_in_last_tile == 289 - 256
        assert mapping.row_utilization < 1.0

    def test_channel_groups_single_when_small(self):
        mapping = map_layer(make_spec(cin=16, cout=32))
        assert mapping.channel_groups == 1

    def test_channel_groups_grow_with_channels(self):
        spec = make_spec(cin=512, cout=512, size=8)
        mapping4 = map_layer(spec, ArchitectureConfig(activation_bits=4))
        mapping8 = map_layer(spec, ArchitectureConfig(activation_bits=8))
        assert mapping4.channel_groups >= 2
        assert mapping8.channel_groups >= mapping4.channel_groups

    def test_channels_per_nanowire(self):
        mapping = map_layer(make_spec(), ArchitectureConfig(activation_bits=4))
        assert mapping.channels_per_nanowire == 16

    def test_accumulator_width_grows_with_activation_bits(self):
        spec = make_spec()
        width4 = map_layer(spec, ArchitectureConfig(activation_bits=4)).accumulator_width
        width8 = map_layer(spec, ArchitectureConfig(activation_bits=8)).accumulator_width
        assert width8 == width4 + 4

    def test_storage_fits_capacity(self):
        mapping = map_layer(make_spec(cin=256, cout=256, size=8))
        assert mapping.storage_bits_per_row <= mapping.capacity_bits_per_row

    def test_demand_conversion(self):
        mapping = map_layer(make_spec(size=32, cout=64))
        demand = mapping.demand()
        assert demand.row_tiles == mapping.row_tiles
        assert demand.max_output_tiles == 64

    def test_output_tiles_for_wide_fc(self):
        weights = synthetic_ternary_weights((4096, 64), 0.5, rng=0)
        spec = ConvLayerSpec.from_linear("fc", weights)
        mapping = map_layer(spec, ArchitectureConfig(activation_bits=8))
        assert mapping.output_tiles >= 2

    def test_patch_too_large_rejected(self):
        tiny = ArchitectureConfig(
            ap=APConfig(rows=16, columns=4, reserved_columns=1), activation_bits=4
        )
        spec = make_spec(k=9, size=16, padding=4)
        with pytest.raises(MappingError):
            map_layer(spec, tiny)


class TestAccumulatorRange:
    def test_range_covers_worst_filter(self):
        weights = np.zeros((2, 1, 2, 2), dtype=np.int8)
        weights[0, 0] = [[1, 1], [1, 1]]
        weights[1, 0] = [[-1, -1], [0, 0]]
        spec = ConvLayerSpec("w", weights, 4, 4, 1, 0)
        value_range = accumulator_range_for_layer(spec, activation_bits=4)
        assert value_range.hi == 4 * 15
        assert value_range.lo == -2 * 15
