"""Tests for layer- and model-level compilation."""

import numpy as np
import pytest

from repro.core.compiler import (
    CompiledModel,
    CompilerConfig,
    compile_layer,
    compile_model,
)
from repro.core.frontend import specs_for_network
from repro.errors import CompilationError, ConfigurationError
from repro.nn.stats import ConvLayerSpec
from repro.nn.ternary import synthetic_ternary_weights


def make_spec(cout=16, cin=8, k=3, size=8, sparsity=0.6, name="layer", seed=0):
    weights = synthetic_ternary_weights((cout, cin, k, k), sparsity, rng=seed)
    return ConvLayerSpec(name, weights, size, size, 1, 1)


class TestCompilerConfig:
    def test_configuration_names(self):
        assert CompilerConfig(enable_cse=True).configuration_name == "unroll+CSE"
        assert CompilerConfig(enable_cse=False).configuration_name == "unroll"

    def test_effective_architecture_propagates_bits(self):
        config = CompilerConfig(activation_bits=8)
        assert config.effective_architecture.activation_bits == 8

    def test_invalid_values(self):
        with pytest.raises(Exception):
            CompilerConfig(activation_bits=0)
        with pytest.raises(Exception):
            CompilerConfig(max_slices_per_layer=0)


class TestCompileLayer:
    def test_unroll_ops_equal_nonzeros(self):
        spec = make_spec()
        layer = compile_layer(spec, CompilerConfig(enable_cse=False))
        assert layer.total_ops == spec.nonzero_weights
        assert layer.unrolled_ops == spec.nonzero_weights

    def test_cse_reduces_ops(self):
        spec = make_spec(cout=64, cin=16, sparsity=0.5)
        cse = compile_layer(spec, CompilerConfig(enable_cse=True))
        unroll = compile_layer(spec, CompilerConfig(enable_cse=False))
        assert cse.total_ops < unroll.total_ops
        assert cse.cse_definitions > 0

    def test_histogram_counts_dfg_ops(self):
        spec = make_spec()
        layer = compile_layer(spec, CompilerConfig(enable_cse=True))
        assert sum(layer.dfg_width_histogram.values()) == layer.dfg_ops

    def test_inplace_outofplace_partition(self):
        spec = make_spec()
        layer = compile_layer(spec, CompilerConfig(enable_cse=True))
        assert layer.inplace_ops + layer.outofplace_ops == layer.dfg_ops

    def test_emit_programs_keeps_slices(self):
        spec = make_spec(cout=8, cin=4)
        layer = compile_layer(spec, CompilerConfig(enable_cse=True), emit_programs=True)
        assert len(layer.slices) == spec.in_channels
        assert all(len(s.program.instructions) > 0 for s in layer.slices)

    def test_stats_path_matches_emitted_programs(self):
        """The fast statistics path must agree with full code generation."""
        spec = make_spec(cout=12, cin=6, sparsity=0.5)
        config = CompilerConfig(enable_cse=True)
        stats_only = compile_layer(spec, config, emit_programs=False)
        emitted = compile_layer(spec, config, emit_programs=True)
        assert stats_only.dfg_ops == emitted.dfg_ops
        assert stats_only.accumulation_ops == emitted.accumulation_ops
        assert stats_only.total_ops == emitted.total_ops

    def test_slice_sampling_scales_counts(self):
        spec = make_spec(cout=16, cin=32, sparsity=0.5)
        exact = compile_layer(spec, CompilerConfig(enable_cse=False))
        sampled = compile_layer(
            spec, CompilerConfig(enable_cse=False, max_slices_per_layer=8)
        )
        assert sampled.compiled_slices == 8
        assert sampled.scale_factor == pytest.approx(4.0)
        # The scaled estimate should be within ~25 % of the exact count.
        assert sampled.total_ops == pytest.approx(exact.total_ops, rel=0.25)

    def test_accumulator_width_exposed(self):
        layer = compile_layer(make_spec(), CompilerConfig(activation_bits=4))
        assert layer.accumulator_width == layer.mapping.accumulator_width
        assert layer.accumulator_width > 4


class TestCompileModel:
    @pytest.fixture(scope="class")
    def small_model_specs(self):
        return [
            make_spec(cout=8, cin=3, size=16, name="conv1", seed=1),
            make_spec(cout=16, cin=8, size=8, name="conv2", seed=2),
        ]

    def test_layers_in_order(self, small_model_specs):
        compiled = compile_model(small_model_specs, CompilerConfig(), name="tiny")
        assert [layer.name for layer in compiled.layers] == ["conv1", "conv2"]

    def test_totals_are_sums(self, small_model_specs):
        compiled = compile_model(small_model_specs, CompilerConfig(), name="tiny")
        assert compiled.total_ops == sum(l.total_ops for l in compiled.layers)
        assert compiled.total_unrolled_ops == sum(l.unrolled_ops for l in compiled.layers)

    def test_arrays_required_is_worst_layer(self, small_model_specs):
        compiled = compile_model(small_model_specs, CompilerConfig(), name="tiny")
        assert compiled.arrays_required == 1

    def test_layer_lookup(self, small_model_specs):
        compiled = compile_model(small_model_specs, CompilerConfig(), name="tiny")
        assert compiled.layer_by_name("conv2").name == "conv2"
        with pytest.raises(CompilationError):
            compiled.layer_by_name("missing")

    def test_vgg9_op_counts_against_paper(self):
        """Experiment E3/E5: VGG-9 at 0.85 sparsity lands near the paper's 696K/542K."""
        specs = specs_for_network("vgg9", sparsity=0.85, rng=0)
        unroll = compile_model(specs, CompilerConfig(enable_cse=False), name="vgg9")
        cse = compile_model(
            specs, CompilerConfig(enable_cse=True, max_slices_per_layer=16), name="vgg9"
        )
        assert 0.55e6 < unroll.total_ops < 0.85e6
        assert cse.total_ops < unroll.total_ops
        reduction = 1.0 - cse.total_ops / unroll.total_ops
        assert 0.05 < reduction < 0.45
