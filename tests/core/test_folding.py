"""Tests for constant weight folding."""

import numpy as np
import pytest

from repro.core.expr import Term
from repro.core.folding import fold_weight_slice, slice_density_histogram, unrolled_op_count
from repro.errors import CompilationError


class TestFoldWeightSlice:
    def test_signs_and_terms(self):
        weight_slice = np.array([[1, 0, -1], [0, 0, 0]])
        rows = fold_weight_slice(weight_slice)
        assert len(rows) == 2
        assert rows[0].sign_of(Term.input(0)) == 1
        assert rows[0].sign_of(Term.input(2)) == -1
        assert Term.input(1) not in rows[0]
        assert len(rows[1]) == 0

    def test_no_multiplications_remain(self):
        """Folding produces only +/-1 coefficients - multiplication-free."""
        weight_slice = np.array([[1, -1, 1, 0, -1]])
        rows = fold_weight_slice(weight_slice)
        assert all(sign in (-1, 1) for _, sign in rows[0])

    def test_rejects_non_ternary(self):
        with pytest.raises(Exception):
            fold_weight_slice(np.array([[2, 0]]))

    def test_rejects_wrong_rank(self):
        with pytest.raises(CompilationError):
            fold_weight_slice(np.array([1, 0, -1]))


class TestUnrolledOpCount:
    def test_fused_count_is_nonzeros(self):
        weight_slice = np.array([[1, -1, 0], [0, 1, 0], [0, 0, 0]])
        assert unrolled_op_count(weight_slice) == 3

    def test_mvm_convention(self):
        weight_slice = np.array([[1, -1, 0], [0, 1, 0], [0, 0, 0]])
        assert unrolled_op_count(weight_slice, fused_accumulation=False) == 1

    def test_paper_eq1_nonzeros(self, paper_eq1_matrix):
        """Eq. 1's matrix has ~20 non-zero weights (the paper quotes 19 ops)."""
        assert unrolled_op_count(paper_eq1_matrix) == 20
        assert unrolled_op_count(paper_eq1_matrix, fused_accumulation=False) == 14

    def test_rejects_wrong_rank(self):
        with pytest.raises(CompilationError):
            unrolled_op_count(np.zeros(3, dtype=np.int8))


class TestDensityHistogram:
    def test_histogram(self):
        weight_slice = np.array([[1, -1, 0], [0, 1, 0], [0, 0, 0]])
        histogram = slice_density_histogram(weight_slice)
        assert histogram == {2: 1, 1: 1, 0: 1}
