"""Shared fixtures of the end-to-end inference suite.

The equivalence tests run the paper's benchmark topologies at reduced channel
width (``width_multiplier`` / ``base_width``): the layer recipes, strides,
residual shortcuts and pooling stages are those of vgg9 and resnet18, but the
narrow channels keep exact (every-slice) functional simulation at test speed.
"""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm2d,
    Flatten,
    MaxPool2d,
    ReLU,
    TernaryConv2d,
    TernaryLinear,
)
from repro.nn.model import Sequential
from repro.nn.models.resnet import build_resnet18
from repro.nn.models.vgg import build_vgg9


@pytest.fixture(scope="module")
def images_rng():
    return np.random.default_rng(2024)


@pytest.fixture(scope="module")
def tiny_cnn():
    """A minimal conv/pool/fc stack (fast enough for the executor matrix)."""
    model = Sequential(
        [
            TernaryConv2d(3, 4, kernel_size=3, stride=1, padding=1, sparsity=0.5, rng=1),
            BatchNorm2d(4),
            ReLU(),
            TernaryConv2d(4, 4, kernel_size=3, stride=1, padding=1, sparsity=0.5, rng=2),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            TernaryLinear(4 * 4 * 4, 10, sparsity=0.5, rng=3),
        ],
        name="tinycnn",
    )
    return model, (3, 8, 8)


@pytest.fixture(scope="module")
def vgg9_narrow():
    """The vgg9 topology at 1/16 width on 16x16 inputs."""
    model = build_vgg9(
        num_classes=10, input_size=16, sparsity=0.85, rng=0, width_multiplier=1 / 16
    )
    return model, (3, 16, 16)


@pytest.fixture(scope="module")
def resnet18_narrow():
    """The resnet18 topology (stem, 4 stages, shortcuts) at base width 4."""
    model = build_resnet18(num_classes=10, sparsity=0.8, rng=0, base_width=4)
    return model, (3, 32, 32)
