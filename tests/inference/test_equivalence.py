"""AP dataflow logits vs. the pure-NumPy quantized reference.

The paper's "retaining software accuracy" claim, executed end to end: the
RTM-AP computes exact integers, so the functional dataflow's logits must be
**byte-identical** to the NumPy reference on whole networks - including the
residual shortcuts, strides and pooling stages of the benchmark topologies.
"""

import numpy as np
import pytest

from repro.errors import CompilationError
from repro.inference import (
    BatchedInference,
    quantized_reference_forward,
    run_inference,
)
from repro.perf.model import crosscheck_execution


class TestLogitsMatchReference:
    def test_vgg9_topology_byte_identical(self, vgg9_narrow, images_rng):
        model, input_shape = vgg9_narrow
        images = images_rng.uniform(0.0, 1.0, size=(2,) + input_shape)
        reference = quantized_reference_forward(model, images, bits=4)
        result = run_inference(model, images, bits=4)
        assert result.logits.shape == (2, 10)
        assert np.array_equal(result.logits, reference)

    def test_resnet18_topology_byte_identical(self, resnet18_narrow, images_rng):
        model, input_shape = resnet18_narrow
        images = images_rng.uniform(0.0, 1.0, size=(2,) + input_shape)
        reference = quantized_reference_forward(
            model, images, bits=4, input_shape=input_shape
        )
        result = run_inference(model, images, bits=4, input_shape=input_shape)
        assert result.logits.shape == (2, 10)
        assert np.array_equal(result.logits, reference)

    def test_8bit_activations(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        images = images_rng.uniform(0.0, 1.0, size=(1,) + input_shape)
        reference = quantized_reference_forward(model, images, bits=8)
        result = run_inference(model, images, bits=8)
        assert np.array_equal(result.logits, reference)

    def test_registry_name_entry_point(self, images_rng):
        """run_inference accepts a registry model name (width-scaled)."""
        images = images_rng.uniform(0.0, 1.0, size=(1, 3, 32, 32))
        result = run_inference(
            "vgg9", images, bits=4, width=1 / 32, sparsity=0.85, rng=0
        )
        assert result.model == "vgg9"
        assert result.logits.shape == (1, 10)

    def test_single_unbatched_image(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        image = images_rng.uniform(0.0, 1.0, size=input_shape)
        result = run_inference(model, image, bits=4)
        assert result.images == 1
        assert result.logits.shape == (1, 10)


class TestBatchedExecution:
    def test_batch_equals_per_image(self, tiny_cnn, images_rng):
        """Per-image quantization makes the batch a set of independent streams."""
        model, input_shape = tiny_cnn
        images = images_rng.uniform(0.0, 1.0, size=(3,) + input_shape)
        batched = run_inference(model, images, bits=4)
        one_by_one = np.concatenate(
            [run_inference(model, images[i], bits=4).logits for i in range(3)]
        )
        assert np.array_equal(batched.logits, one_by_one)

    def test_micro_batching_byte_identical(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        images = images_rng.uniform(0.0, 1.0, size=(4,) + input_shape)
        whole = run_inference(model, images, bits=4)
        chunked = run_inference(model, images, bits=4, batch=2)
        assert np.array_equal(whole.logits, chunked.logits)
        assert whole.execution.total_stats == chunked.execution.total_stats
        assert whole.checksum == chunked.checksum

    def test_counters_scale_with_batch(self, tiny_cnn, images_rng):
        """Search phases are data-independent: N images charge exactly N x."""
        model, input_shape = tiny_cnn
        one = run_inference(
            model, images_rng.uniform(0.0, 1.0, size=(1,) + input_shape), bits=4
        )
        three = run_inference(
            model, images_rng.uniform(0.0, 1.0, size=(3,) + input_shape), bits=4
        )
        assert (
            three.execution.total_stats.search_phases
            == 3 * one.execution.total_stats.search_phases
        )


class TestBatchedWaveOnTopologies:
    """The mega-kernel (``batched``) backend on whole benchmark topologies.

    ``tests/inference/test_determinism.py`` pins the three-way backend matrix
    on the tiny CNN; these runs add the benchmark topologies - strides,
    residual shortcuts and pooling stages - where the layer waves span many
    heterogeneous tiles per layer, and sweep the batched backend across
    executors and pipelined dispatch against one vectorized serial baseline.
    """

    @staticmethod
    def _run(model, input_shape, images, **kwargs):
        driver = BatchedInference(model, input_shape, bits=4, **kwargs)
        try:
            return driver.run(images)
        finally:
            driver.close()

    @pytest.mark.parametrize(
        "fixture_name", ["vgg9_narrow", "resnet18_narrow"]
    )
    def test_batched_matches_vectorized_across_modes(
        self, request, fixture_name, images_rng
    ):
        model, input_shape = request.getfixturevalue(fixture_name)
        images = images_rng.uniform(0.0, 1.0, size=(2,) + input_shape)
        baseline = self._run(model, input_shape, images, backend="vectorized")
        modes = [
            {"executor": "serial"},
            {"executor": "thread", "workers": 2},
            {"executor": "serial", "pipeline": True},
            {"executor": "thread", "workers": 2, "pipeline": True},
        ]
        for mode in modes:
            batched = self._run(
                model, input_shape, images, backend="batched", **mode
            )
            label = f"batched {mode}"
            assert np.array_equal(batched.logits, baseline.logits), label
            assert batched.checksum == baseline.checksum, label
            assert (
                batched.execution.total_stats == baseline.execution.total_stats
            ), label
            for left, right in zip(
                batched.execution.layers, baseline.execution.layers
            ):
                assert left.stats == right.stats, (
                    f"{label}: layer {left.name} diverged"
                )


class TestHostDataflowModes:
    """Wave-native vs per-image host staging: one dataflow, two schedules.

    ``REPRO_HOST_DATAFLOW`` selects how the host feeds the batched backend -
    fused quantize/lower/stage with operand views (``wave``, the default) or
    the legacy per-(image, tile) payload fan-out (``per-image``).  Both must
    produce byte-identical logits, checksums and per-layer CAMStats on every
    benchmark topology and executor.
    """

    @staticmethod
    def _run(model, input_shape, images, mode, monkeypatch, **kwargs):
        monkeypatch.setenv("REPRO_HOST_DATAFLOW", mode)
        driver = BatchedInference(
            model, input_shape, bits=4, backend="batched", **kwargs
        )
        try:
            return driver.run(images)
        finally:
            driver.close()

    @pytest.mark.parametrize(
        "fixture_name", ["tiny_cnn", "vgg9_narrow", "resnet18_narrow"]
    )
    def test_wave_matches_per_image(
        self, request, fixture_name, images_rng, monkeypatch
    ):
        model, input_shape = request.getfixturevalue(fixture_name)
        images = images_rng.uniform(0.0, 1.0, size=(3,) + input_shape)
        legacy = self._run(model, input_shape, images, "per-image", monkeypatch)
        for mode in (
            {"executor": "serial"},
            {"executor": "thread", "workers": 2},
        ):
            wave = self._run(
                model, input_shape, images, "wave", monkeypatch, **mode
            )
            label = f"wave {mode}"
            assert np.array_equal(wave.logits, legacy.logits), label
            assert wave.checksum == legacy.checksum, label
            assert (
                wave.execution.total_stats == legacy.execution.total_stats
            ), label
            for left, right in zip(
                wave.execution.layers, legacy.execution.layers
            ):
                assert left.stats == right.stats, (
                    f"{label}: layer {left.name} diverged"
                )

    def test_unknown_mode_rejected(self, tiny_cnn, monkeypatch):
        model, input_shape = tiny_cnn
        monkeypatch.setenv("REPRO_HOST_DATAFLOW", "sideways")
        with pytest.raises(Exception):
            BatchedInference(model, input_shape, bits=4, backend="batched")


class TestRuntimeIntegration:
    def test_cost_model_crosscheck(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        images = images_rng.uniform(0.0, 1.0, size=(2,) + input_shape)
        driver = BatchedInference(model, input_shape, bits=4, name="tinycnn")
        try:
            result = driver.run(images)
            check = crosscheck_execution(
                driver.plan, result.execution, images=result.images
            )
        finally:
            driver.close()
        assert check.consistent, check.describe()

    def test_accelerator_ledgers_populated(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        images = images_rng.uniform(0.0, 1.0, size=(1,) + input_shape)
        driver = BatchedInference(model, input_shape, bits=4)
        try:
            result = driver.run(images)
            tile_stats = driver.accelerator.tile_stats()
            movement = driver.accelerator.movement_ledger()
        finally:
            driver.close()
        total = driver.accelerator.total_stats
        assert tile_stats
        assert total == result.execution.total_stats
        # Activation hand-off traffic is metered on the interconnect ledger.
        assert sum(cost.bits for cost in movement.values()) > 0
        assert result.store.total_activation_bits > 0

    def test_activation_store_buffers(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        images = images_rng.uniform(0.0, 1.0, size=(2,) + input_shape)
        result = run_inference(model, images, bits=4, keep_activations=True)
        layers = result.store.layers()
        assert len(layers) == 3  # two convs + fc
        for entry in layers:
            assert entry.steps.shape == (2,)
            assert entry.input_codes is not None
            assert entry.output_int is not None
            assert entry.input_codes.max() <= 15
            assert entry.input_codes.min() >= 0

    def test_each_run_keeps_its_own_store(self, tiny_cnn, images_rng):
        """A second run must not mutate the first result's activation store."""
        model, input_shape = tiny_cnn
        driver = BatchedInference(model, input_shape, bits=4)
        try:
            first = driver.run(images_rng.uniform(0.0, 1.0, size=(2,) + input_shape))
            first_bits = first.store.total_activation_bits
            first_steps = {e.name: e.steps.copy() for e in first.store.layers()}
            second = driver.run(images_rng.uniform(0.0, 1.0, size=(1,) + input_shape))
        finally:
            driver.close()
        assert first.store is not second.store
        assert first.store.total_activation_bits == first_bits
        for entry in first.store.layers():
            assert np.array_equal(entry.steps, first_steps[entry.name])
            assert entry.steps.shape == (2,)

    def test_rejects_slice_sampled_compilation(self, tiny_cnn):
        """Functional inference needs every input-channel slice."""
        from repro.core.compiler import CompilerConfig, compile_model
        from repro.inference.dataflow import DataflowGraph
        from repro.nn.stats import model_layer_specs
        from repro.runtime.plan import build_execution_plan

        model, input_shape = tiny_cnn
        specs = model_layer_specs(model, input_shape)
        compiled = compile_model(
            specs,
            CompilerConfig(activation_bits=4, max_slices_per_layer=1),
            emit_programs=True,
        )
        plan = build_execution_plan(compiled)
        with pytest.raises(CompilationError, match="slice sampling"):
            DataflowGraph.build(model, input_shape, compiled, plan)

    def test_rejects_mismatched_input_shape(self, tiny_cnn, images_rng):
        from repro.errors import ModelDefinitionError

        model, input_shape = tiny_cnn
        driver = BatchedInference(model, input_shape, bits=4)
        try:
            with pytest.raises(ModelDefinitionError):
                driver.run(images_rng.uniform(0.0, 1.0, size=(1, 3, 9, 9)))
        finally:
            driver.close()
