"""Inter-layer dataflow determinism across executors and backends.

The inference engine's contract extends the runtime's: because per-tile
partial sums are exact integers and every reduction (integer sums, per-round
maxima) is order-independent, the {serial, parallel, thread} executors and
the {reference, vectorized, batched} backends must produce byte-identical
logits *and* byte-identical aggregated CAMStats for the same images.  The
``batched`` rows additionally exercise the layer-wave fast path (one
mega-kernel per layer) against the per-tile baselines.
"""

import numpy as np
import pytest

from repro.inference import run_inference

EXECUTORS = ("serial", "parallel", "thread")
BACKENDS = ("reference", "vectorized", "batched")


@pytest.fixture(scope="module")
def tiny_images(tiny_cnn, images_rng):
    _, input_shape = tiny_cnn
    return images_rng.uniform(0.0, 1.0, size=(2,) + input_shape)


@pytest.fixture(scope="module")
def baseline(tiny_cnn, tiny_images):
    model, _ = tiny_cnn
    return run_inference(
        model, tiny_images, bits=4, executor="serial", backend="vectorized"
    )


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_logits_and_stats_byte_identical(
    tiny_cnn, tiny_images, baseline, executor, backend
):
    model, _ = tiny_cnn
    result = run_inference(
        model, tiny_images, bits=4, executor=executor, workers=2, backend=backend
    )
    assert np.array_equal(result.logits, baseline.logits)
    assert result.checksum == baseline.checksum
    assert result.execution.total_stats == baseline.execution.total_stats
    for left, right in zip(result.execution.layers, baseline.execution.layers):
        assert left.stats == right.stats, f"layer {left.name} diverged"
        assert left.checksum == right.checksum


def test_executors_agree_on_residual_topology(resnet18_narrow, images_rng):
    """The layer barrier chain holds for residual models too."""
    model, input_shape = resnet18_narrow
    images = images_rng.uniform(0.0, 1.0, size=(1,) + input_shape)
    serial = run_inference(model, images, bits=4, executor="serial")
    threaded = run_inference(model, images, bits=4, executor="thread", workers=4)
    assert np.array_equal(serial.logits, threaded.logits)
    assert serial.execution.total_stats == threaded.execution.total_stats


def test_micro_batch_interleaving_deterministic(tiny_cnn, tiny_images):
    """Chunked pool execution reproduces the one-shot batch exactly."""
    model, _ = tiny_cnn
    whole = run_inference(model, tiny_images, bits=4, executor="thread", workers=2)
    chunked = run_inference(
        model, tiny_images, bits=4, executor="thread", workers=2, batch=1
    )
    assert np.array_equal(whole.logits, chunked.logits)
    assert whole.execution.total_stats == chunked.execution.total_stats
