"""Pipelined inference engine: byte-identity, overlap, teardown safety."""

import numpy as np
import pytest

from repro.errors import ModelDefinitionError
from repro.inference.engine import BatchedInference
from repro.inference.reference import quantized_reference_forward


def _engines(model, shape, executor="serial", workers=None, **kwargs):
    sync = BatchedInference(
        model, shape, bits=4, executor=executor, workers=workers, **kwargs
    )
    pipe = BatchedInference(
        model,
        shape,
        bits=4,
        executor=executor,
        workers=workers,
        pipeline=True,
        **kwargs,
    )
    return sync, pipe


class TestPipelinedByteIdentity:
    @pytest.mark.parametrize(
        "executor,workers",
        [("serial", None), ("thread", 2), ("parallel", 2)],
    )
    def test_matches_layer_sync_and_reference(
        self, tiny_cnn, images_rng, executor, workers
    ):
        model, shape = tiny_cnn
        images = images_rng.normal(size=(4,) + shape)
        sync, pipe = _engines(model, shape, executor=executor, workers=workers)
        try:
            baseline = sync.run(images)
            pipelined = pipe.run(images)
        finally:
            sync.close()
            pipe.close()

        reference = quantized_reference_forward(
            model, images, input_shape=shape, bits=4
        )
        assert pipelined.execution.mode == "pipelined"
        assert baseline.execution.mode == "layer-sync"
        assert np.array_equal(pipelined.logits, baseline.logits)
        assert np.array_equal(pipelined.logits, reference)
        assert pipelined.checksum == baseline.checksum
        assert pipelined.execution.total_stats == baseline.execution.total_stats
        for expected, actual in zip(
            baseline.execution.layers, pipelined.execution.layers
        ):
            assert actual.stats == expected.stats
            assert actual.energy == expected.energy
            assert actual.latency == expected.latency

    @pytest.mark.parametrize("backend", ["reference", "vectorized", "batched"])
    def test_backends_agree(self, tiny_cnn, images_rng, backend):
        model, shape = tiny_cnn
        images = images_rng.normal(size=(2,) + shape)
        sync, pipe = _engines(model, shape, backend=backend)
        try:
            baseline = sync.run(images)
            pipelined = pipe.run(images)
        finally:
            sync.close()
            pipe.close()
        assert np.array_equal(pipelined.logits, baseline.logits)
        assert pipelined.execution.total_stats == baseline.execution.total_stats

    def test_in_flight_cap_equivalence(self, tiny_cnn, images_rng):
        """Depth 1 (fully serialized images) still matches full depth."""
        model, shape = tiny_cnn
        images = images_rng.normal(size=(3,) + shape)
        deep = BatchedInference(model, shape, bits=4, pipeline=True)
        shallow = BatchedInference(
            model, shape, bits=4, pipeline=True, pipeline_depth=1
        )
        try:
            full = deep.run(images)
            serialized = shallow.run(images)
        finally:
            deep.close()
            shallow.close()
        assert np.array_equal(full.logits, serialized.logits)
        assert full.execution.total_stats == serialized.execution.total_stats
        for trace in shallow.tracker.trace().values():
            assert trace.max_in_flight <= 1

    def test_micro_batch_caps_in_flight_images(self, tiny_cnn, images_rng):
        model, shape = tiny_cnn
        images = images_rng.normal(size=(4,) + shape)
        engine = BatchedInference(model, shape, bits=4, pipeline=True)
        try:
            chunked = engine.run(images, batch=2)
            unchunked = engine.run(images)
        finally:
            engine.close()
        assert np.array_equal(chunked.logits, unchunked.logits)

    def test_activation_store_matches_layer_sync(self, tiny_cnn, images_rng):
        model, shape = tiny_cnn
        images = images_rng.normal(size=(3,) + shape)
        sync, pipe = _engines(model, shape, keep_activations=True)
        try:
            baseline = sync.run(images)
            pipelined = pipe.run(images)
        finally:
            sync.close()
            pipe.close()
        sync_layers = baseline.store.layers()
        pipe_layers = pipelined.store.layers()
        assert [entry.name for entry in pipe_layers] == [
            entry.name for entry in sync_layers
        ]
        for expected, actual in zip(sync_layers, pipe_layers):
            assert np.array_equal(actual.steps, expected.steps)
            assert actual.input_bits == expected.input_bits
            assert np.array_equal(actual.input_codes, expected.input_codes)
            assert np.array_equal(actual.output_int, expected.output_int)

    def test_residual_topology_pipelines(self, resnet18_narrow, images_rng):
        """Residual host-side adds stay correct under per-image drivers."""
        model, shape = resnet18_narrow
        images = images_rng.normal(size=(2,) + shape)
        sync, pipe = _engines(model, shape, executor="thread", workers=2)
        try:
            baseline = sync.run(images)
            pipelined = pipe.run(images)
        finally:
            sync.close()
            pipe.close()
        assert np.array_equal(pipelined.logits, baseline.logits)
        assert pipelined.execution.total_stats == baseline.execution.total_stats


class TestPipelinedLifecycle:
    def test_empty_batch_rejected(self, tiny_cnn):
        model, shape = tiny_cnn
        engine = BatchedInference(model, shape, bits=4, pipeline=True)
        try:
            with pytest.raises(ModelDefinitionError, match="at least one image"):
                engine.run(np.zeros((0,) + shape))
        finally:
            engine.close()

    def test_invalid_depth_rejected(self, tiny_cnn):
        model, shape = tiny_cnn
        with pytest.raises(ModelDefinitionError, match="pipeline_depth"):
            BatchedInference(model, shape, bits=4, pipeline_depth=0)

    def test_driver_error_restores_model_and_closes_clean(
        self, tiny_cnn, images_rng
    ):
        """A failing request unwinds the patch and leaves no stuck workers."""
        model, shape = tiny_cnn
        engine = BatchedInference(
            model, shape, bits=4, executor="thread", workers=2, pipeline=True
        )
        bad = images_rng.normal(size=(2, 99))  # wrong shape
        with pytest.raises(ModelDefinitionError):
            engine.run(bad)
        # The patch was unwound: plain forwards work again.
        good = images_rng.normal(size=(2,) + shape)
        result = engine.run(good)
        assert result.images == 2
        engine.close()
        engine.close()  # idempotent

    def test_close_is_exception_safe(self, tiny_cnn, monkeypatch):
        model, shape = tiny_cnn
        engine = BatchedInference(model, shape, bits=4)
        calls = {"released": 0}

        def tracked_release():
            calls["released"] += 1
            return 0

        monkeypatch.setattr(engine.accelerator, "release_aps", tracked_release)

        def exploding_close():
            raise RuntimeError("pool teardown failed")

        monkeypatch.setattr(engine.executor, "close", exploding_close)
        with pytest.raises(RuntimeError, match="pool teardown failed"):
            engine.close()
        # The AP pool was still released, and close stays idempotent.
        assert calls["released"] == 1
        engine.close()
        assert calls["released"] == 1
