"""Full-width benchmark topologies on the mega-kernel (``batched``) backend.

The narrow fixtures in this directory keep tier-1 fast; these runs execute
the paper's networks at **full channel width** - the configuration the
batched backend was built to make tractable ("seconds, not hours").  They
are marked ``full_width`` and skipped unless ``REPRO_FULL_WIDTH=1`` is set:
the full-width ResNet-18 plan/compile alone takes ~3 minutes on one core
(see ``benchmarks/bench_inference.py`` for the timed variant that lands in
``BENCH_inference.json``).
"""

import numpy as np
import pytest

from repro.inference import BatchedInference, quantized_reference_forward
from repro.nn.models.resnet import build_resnet18
from repro.nn.models.vgg import build_vgg9
from repro.session import Session

pytestmark = [pytest.mark.slow, pytest.mark.full_width]

INPUT_SHAPE = (3, 32, 32)


@pytest.fixture(scope="module")
def image_rng():
    return np.random.default_rng(7)


def test_vgg9_full_width_batched_byte_identical(image_rng):
    """Full-width VGG-9, one CIFAR-sized image, explicit batched backend."""
    model = build_vgg9(num_classes=10, input_size=32, sparsity=0.85, rng=0)
    images = image_rng.uniform(0.0, 1.0, size=(1,) + INPUT_SHAPE)
    driver = BatchedInference(
        model, INPUT_SHAPE, bits=4, backend="batched", name="vgg9-full"
    )
    try:
        result = driver.run(images)
    finally:
        driver.close()
    expected = quantized_reference_forward(model, images, bits=4)
    assert np.array_equal(result.logits, expected)


def test_resnet18_full_width_session_batched(image_rng):
    """Full-width ResNet-18 served from a weight-resident batched session."""
    model = build_resnet18(num_classes=10, sparsity=0.8, rng=0)
    images = image_rng.uniform(0.0, 1.0, size=(1,) + INPUT_SHAPE)
    with Session(
        model=model, input_shape=INPUT_SHAPE, bits=4, backend="batched"
    ) as session:
        session.compile().deploy()
        result = session.infer(images)
    expected = quantized_reference_forward(
        model, images, bits=4, input_shape=INPUT_SHAPE
    )
    assert np.array_equal(result.logits, expected)


def test_vgg9_full_width_host_dataflow_modes(image_rng, monkeypatch):
    """Wave-native vs per-image host staging at full width: byte-identical
    logits, checksum and aggregate CAMStats on the same driver workload."""
    model = build_vgg9(num_classes=10, input_size=32, sparsity=0.85, rng=0)
    images = image_rng.uniform(0.0, 1.0, size=(2,) + INPUT_SHAPE)
    results = {}
    for mode in ("per-image", "wave"):
        monkeypatch.setenv("REPRO_HOST_DATAFLOW", mode)
        driver = BatchedInference(
            model, INPUT_SHAPE, bits=4, backend="batched", name="vgg9-full"
        )
        try:
            results[mode] = driver.run(images)
        finally:
            driver.close()
    wave, legacy = results["wave"], results["per-image"]
    assert np.array_equal(wave.logits, legacy.logits)
    assert wave.checksum == legacy.checksum
    assert wave.execution.total_stats == legacy.execution.total_stats
    expected = quantized_reference_forward(model, images, bits=4)
    assert np.array_equal(wave.logits, expected)
