"""Unit tests of the activation quantization / lowering / buffering layer."""

import numpy as np
import pytest

from repro.ap.backends.packing import unpack_bits
from repro.errors import ModelDefinitionError
from repro.inference.activations import (
    ActivationStore,
    HostArena,
    dequantize_batch,
    lower_batch_planes,
    lower_batch_rows,
    lower_input_rows,
    quantize_batch,
)
from repro.nn.im2col import im2col


class TestQuantizeBatch:
    def test_per_image_independence(self, rng):
        """Each image's codes depend only on that image."""
        images = rng.uniform(0.0, 1.0, size=(3, 2, 4, 4))
        codes_all, steps_all = quantize_batch(images, bits=4)
        codes_one, steps_one = quantize_batch(images[1:2], bits=4)
        assert np.array_equal(codes_all[1], codes_one[0])
        assert steps_all[1] == steps_one[0]

    def test_codes_within_range(self, rng):
        images = rng.normal(size=(2, 3, 5, 5)) * 100.0
        codes, _ = quantize_batch(images, bits=4)
        assert codes.min() >= 0 and codes.max() <= 15
        signed_codes, _ = quantize_batch(images, bits=4, signed=True)
        assert signed_codes.min() >= -8 and signed_codes.max() <= 7

    def test_rejects_unbatched(self):
        with pytest.raises(ModelDefinitionError):
            quantize_batch(np.zeros(8), bits=4)

    def test_dequantize_scales_per_image(self):
        codes = np.ones((2, 3), dtype=np.int64)
        steps = np.array([0.5, 2.0])
        values = dequantize_batch(codes, steps, scale=2.0)
        assert np.allclose(values[0], 1.0)
        assert np.allclose(values[1], 4.0)


class TestLowerInputRows:
    def test_conv_matches_im2col(self, rng):
        codes = rng.integers(0, 16, size=(3, 6, 6))
        lowered = lower_input_rows(codes, (3, 3), stride=1, padding=1)
        expected = im2col(codes[None], (3, 3), 1, 1)[0]
        assert np.array_equal(lowered, expected)
        assert lowered.shape == (3, 9, 36)

    def test_linear_becomes_1x1(self, rng):
        codes = rng.integers(0, 16, size=(12,))
        lowered = lower_input_rows(codes, (1, 1))
        assert lowered.shape == (12, 1, 1)
        assert np.array_equal(lowered[:, 0, 0], codes)

    def test_rejects_bad_rank(self):
        with pytest.raises(ModelDefinitionError):
            lower_input_rows(np.zeros((2, 2)), (1, 1))


class TestActivationStore:
    def test_records_order_and_traffic(self, rng):
        store = ActivationStore(activation_bits=4)
        store.quantize_input("a", rng.uniform(0, 1, size=(1, 8)))
        store.quantize_input("b", rng.uniform(0, 1, size=(1, 16)))
        assert [entry.name for entry in store.layers()] == ["a", "b"]
        assert store.total_activation_bits == (8 + 16) * 4
        assert "a" in store and "c" not in store

    def test_revisit_extends_entry(self, rng):
        """Micro-batch chunks accumulate instead of overwriting."""
        store = ActivationStore(activation_bits=4, keep_tensors=True)
        store.quantize_input("a", rng.uniform(0, 1, size=(2, 8)))
        store.quantize_input("a", rng.uniform(0, 1, size=(1, 8)))
        entry = store["a"]
        assert entry.steps.shape == (3,)
        assert entry.input_bits == 3 * 8 * 4
        assert entry.input_codes.shape == (3, 8)

    def test_clear(self, rng):
        store = ActivationStore(activation_bits=4)
        store.quantize_input("a", rng.uniform(0, 1, size=(1, 8)))
        store.clear()
        assert store.total_activation_bits == 0
        assert not store.layers()


class TestLowerBatchRows:
    """Batched lowering is byte-identical to per-image lowering, including
    the geometry corners the compiler frontend can emit."""

    CASES = {
        "non_square_tall": dict(shape=(2, 3, 7, 5), kernel=(3, 1), stride=1,
                                padding=0),
        "non_square_wide": dict(shape=(2, 2, 5, 8), kernel=(1, 4), stride=2,
                                padding=0),
        "stride_gt_kernel": dict(shape=(3, 2, 9, 9), kernel=(2, 2), stride=3,
                                 padding=0),
        "zero_padding_none": dict(shape=(2, 2, 4, 4), kernel=(3, 3), stride=1,
                                  padding=0),
        "padding_exceeds_kernel": dict(shape=(2, 1, 3, 3), kernel=(2, 2),
                                       stride=1, padding=4),
        "single_pixel_output": dict(shape=(2, 2, 5, 5), kernel=(5, 5),
                                    stride=1, padding=0),
        "single_pixel_input": dict(shape=(2, 3, 1, 1), kernel=(1, 1), stride=1,
                                   padding=0),
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_matches_per_image(self, rng, case):
        spec = self.CASES[case]
        codes = rng.integers(0, 16, size=spec["shape"])
        batched = lower_batch_rows(
            codes, spec["kernel"], spec["stride"], spec["padding"]
        )
        for image in range(spec["shape"][0]):
            expected = lower_input_rows(
                codes[image], spec["kernel"], spec["stride"], spec["padding"]
            )
            assert np.array_equal(batched[image], expected), case

    def test_features_match_per_image(self, rng):
        codes = rng.integers(0, 16, size=(4, 12))
        batched = lower_batch_rows(codes, (1, 1))
        for image in range(4):
            assert np.array_equal(
                batched[image], lower_input_rows(codes[image], (1, 1))
            )

    def test_rejects_bad_rank(self):
        with pytest.raises(ModelDefinitionError):
            lower_batch_rows(np.zeros((2, 2, 2)), (1, 1))


class TestLowerBatchPlanes:
    """The fused unpack+lower path commutes with lowering then unpacking."""

    @pytest.mark.parametrize("case", sorted(TestLowerBatchRows.CASES))
    def test_planes_equal_unpacked_rows(self, rng, case):
        spec = TestLowerBatchRows.CASES[case]
        width = 5
        codes = rng.integers(-16, 16, size=spec["shape"])
        planes = lower_batch_planes(
            codes, spec["kernel"], spec["stride"], spec["padding"], width=width
        )
        rows = lower_batch_rows(
            codes, spec["kernel"], spec["stride"], spec["padding"]
        )
        # planes axes: (N, C, width, K, P); unpack_bits appends width last.
        expected = unpack_bits(rows, width).transpose(0, 1, 4, 2, 3)
        assert planes.dtype == np.uint8
        assert np.array_equal(planes, expected), case

    def test_features_form(self, rng):
        codes = rng.integers(0, 16, size=(3, 10))
        planes = lower_batch_planes(codes, (1, 1), width=4)
        expected = unpack_bits(
            lower_batch_rows(codes, (1, 1)), 4
        ).transpose(0, 1, 4, 2, 3)
        assert np.array_equal(planes, expected)

    def test_arena_reuse_is_safe(self, rng):
        """Two consecutive layers through one arena: the second lowering
        fully overwrites the reused buffers."""
        arena = HostArena()
        codes_a = rng.integers(0, 16, size=(2, 3, 6, 6))
        codes_b = rng.integers(0, 16, size=(2, 2, 5, 5))
        fresh_a = lower_batch_planes(codes_a, (3, 3), padding=1, width=4)
        lowered_a = lower_batch_planes(
            codes_a, (3, 3), padding=1, width=4, arena=arena
        )
        assert np.array_equal(lowered_a, fresh_a)
        lowered_b = lower_batch_planes(codes_b, (2, 2), width=6, arena=arena)
        assert np.array_equal(
            lowered_b, lower_batch_planes(codes_b, (2, 2), width=6)
        )

    def test_rejects_bad_rank(self):
        with pytest.raises(ModelDefinitionError):
            lower_batch_planes(np.zeros((2, 2, 2)), (1, 1))


class TestHostArena:
    def test_buffers_grow_and_are_reused(self):
        arena = HostArena()
        small = arena.take("k", (2, 3), np.uint8)
        assert small.shape == (2, 3)
        small[...] = 7
        big = arena.take("k", (4, 5), np.int64)
        assert big.shape == (4, 5) and big.dtype == np.int64
        again = arena.take("k", (2, 3), np.uint8)
        assert again.base is big.base  # same backing buffer, no realloc

    def test_keys_are_independent(self):
        arena = HostArena()
        left = arena.take("a", (8,), np.uint8)
        right = arena.take("b", (8,), np.uint8)
        left[...] = 1
        right[...] = 2
        assert left.sum() == 8 and right.sum() == 16
