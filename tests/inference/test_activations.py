"""Unit tests of the activation quantization / lowering / buffering layer."""

import numpy as np
import pytest

from repro.errors import ModelDefinitionError
from repro.inference.activations import (
    ActivationStore,
    dequantize_batch,
    lower_input_rows,
    quantize_batch,
)
from repro.nn.im2col import im2col


class TestQuantizeBatch:
    def test_per_image_independence(self, rng):
        """Each image's codes depend only on that image."""
        images = rng.uniform(0.0, 1.0, size=(3, 2, 4, 4))
        codes_all, steps_all = quantize_batch(images, bits=4)
        codes_one, steps_one = quantize_batch(images[1:2], bits=4)
        assert np.array_equal(codes_all[1], codes_one[0])
        assert steps_all[1] == steps_one[0]

    def test_codes_within_range(self, rng):
        images = rng.normal(size=(2, 3, 5, 5)) * 100.0
        codes, _ = quantize_batch(images, bits=4)
        assert codes.min() >= 0 and codes.max() <= 15
        signed_codes, _ = quantize_batch(images, bits=4, signed=True)
        assert signed_codes.min() >= -8 and signed_codes.max() <= 7

    def test_rejects_unbatched(self):
        with pytest.raises(ModelDefinitionError):
            quantize_batch(np.zeros(8), bits=4)

    def test_dequantize_scales_per_image(self):
        codes = np.ones((2, 3), dtype=np.int64)
        steps = np.array([0.5, 2.0])
        values = dequantize_batch(codes, steps, scale=2.0)
        assert np.allclose(values[0], 1.0)
        assert np.allclose(values[1], 4.0)


class TestLowerInputRows:
    def test_conv_matches_im2col(self, rng):
        codes = rng.integers(0, 16, size=(3, 6, 6))
        lowered = lower_input_rows(codes, (3, 3), stride=1, padding=1)
        expected = im2col(codes[None], (3, 3), 1, 1)[0]
        assert np.array_equal(lowered, expected)
        assert lowered.shape == (3, 9, 36)

    def test_linear_becomes_1x1(self, rng):
        codes = rng.integers(0, 16, size=(12,))
        lowered = lower_input_rows(codes, (1, 1))
        assert lowered.shape == (12, 1, 1)
        assert np.array_equal(lowered[:, 0, 0], codes)

    def test_rejects_bad_rank(self):
        with pytest.raises(ModelDefinitionError):
            lower_input_rows(np.zeros((2, 2)), (1, 1))


class TestActivationStore:
    def test_records_order_and_traffic(self, rng):
        store = ActivationStore(activation_bits=4)
        store.quantize_input("a", rng.uniform(0, 1, size=(1, 8)))
        store.quantize_input("b", rng.uniform(0, 1, size=(1, 16)))
        assert [entry.name for entry in store.layers()] == ["a", "b"]
        assert store.total_activation_bits == (8 + 16) * 4
        assert "a" in store and "c" not in store

    def test_revisit_extends_entry(self, rng):
        """Micro-batch chunks accumulate instead of overwriting."""
        store = ActivationStore(activation_bits=4, keep_tensors=True)
        store.quantize_input("a", rng.uniform(0, 1, size=(2, 8)))
        store.quantize_input("a", rng.uniform(0, 1, size=(1, 8)))
        entry = store["a"]
        assert entry.steps.shape == (3,)
        assert entry.input_bits == 3 * 8 * 4
        assert entry.input_codes.shape == (3, 8)

    def test_clear(self, rng):
        store = ActivationStore(activation_bits=4)
        store.quantize_input("a", rng.uniform(0, 1, size=(1, 8)))
        store.clear()
        assert store.total_activation_bits == 0
        assert not store.layers()
