"""The ``repro check`` CLI gate."""

from __future__ import annotations

import textwrap

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_check_defaults(self):
        arguments = build_parser().parse_args(["check"])
        assert arguments.model == "all"
        assert arguments.width == 0.125
        assert not arguments.plan and not arguments.locks
        assert not arguments.strict

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "--model", "alexnet"])


class TestCheckCommand:
    def test_locks_scope_passes_on_source_tree(self, capsys):
        assert main(["check", "--locks"]) == 0
        out = capsys.readouterr().out
        assert "verified clean" in out
        assert "0 error(s)" in out

    def test_plan_scope_passes_for_vgg9(self, capsys):
        assert main(["check", "--plan", "--model", "vgg9", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "vgg9 width x0.125 [shared]" in out
        assert "vgg9 width x0.125 [resident]" in out
        assert "[strict]" in out

    def test_plan_scope_passes_for_resnet18(self):
        assert main(["check", "--plan", "--model", "resnet18"]) == 0

    def test_strict_gate_fails_on_warnings(self, tmp_path):
        leaky = textwrap.dedent(
            """
            class Runner:
                def go(self, executor, fn, items):
                    return executor.submit_tasks(fn, items)
            """
        )
        (tmp_path / "leaky.py").write_text(leaky)
        assert main(["check", "--locks", "--path", str(tmp_path)]) == 0
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "--locks", "--strict", "--path", str(tmp_path)])
        assert "RPA302" in str(excinfo.value)

    def test_gate_fails_on_errors(self, tmp_path):
        unguarded = textwrap.dedent(
            """
            import threading

            class Ledger:
                def __init__(self):
                    self._pins = {}
                    self._ledger_lock = threading.Lock()

                def leak(self, address):
                    self._pins[address] = 1
            """
        )
        (tmp_path / "unguarded.py").write_text(unguarded)
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "--locks", "--path", str(tmp_path)])
        assert "RPA301" in str(excinfo.value)
        assert "FAILED" in str(excinfo.value)
