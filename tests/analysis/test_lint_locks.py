"""The concurrency lint: lock discipline (RPA301) and executor drains (RPA302)."""

from __future__ import annotations

import textwrap
from pathlib import Path

import repro
from repro.analysis import lint_file, lint_source, lint_tree

UNGUARDED = textwrap.dedent(
    '''
    import threading

    class Ledger:
        def __init__(self):
            self._pins = {}
            self._residency = object()
            self._ledger_lock = threading.Lock()

        def bad_write(self, address):
            self._pins[address] = 1

        def bad_clear(self):
            self._pins.clear()

        def good_write(self, address):
            with self._ledger_lock:
                self._pins[address] = 1
    '''
)

LOCKLESS = textwrap.dedent(
    '''
    class FreeClass:
        def __init__(self):
            self._pins = {}

        def write(self, address):
            self._pins[address] = 1
    '''
)

SUBMIT_LEAK = textwrap.dedent(
    '''
    class Runner:
        def go(self, executor, fn, items):
            return executor.submit_tasks(fn, items)
    '''
)

SUBMIT_CLEAN = textwrap.dedent(
    '''
    class Runner:
        def go(self, fn, items):
            return self.executor.submit_tasks(fn, items)

        def close(self):
            self.executor.close()
    '''
)

SUBMIT_FINALLY = textwrap.dedent(
    '''
    def run(executor, fn, items):
        try:
            return executor.submit_tasks(fn, items)
        finally:
            executor.drain()
    '''
)


class TestLockDiscipline:
    def test_source_tree_is_clean(self):
        package_root = Path(repro.__file__).resolve().parent
        report = lint_tree(package_root)
        assert report.ok, report.describe()
        assert not report.warnings, report.describe()

    def test_unguarded_write_is_rpa301(self):
        report = lint_source(UNGUARDED, file="fixture.py")
        codes = [d.code for d in report.diagnostics]
        assert codes.count("RPA301") == 2
        lines = sorted(d.line for d in report.diagnostics)
        messages = [d.message for d in report.diagnostics]
        assert any("assignment" in m for m in messages)
        assert any("clear()" in m for m in messages)
        assert all(line is not None for line in lines)

    def test_guarded_write_and_init_are_exempt(self):
        guarded_only = UNGUARDED.replace(
            "    def bad_write(self, address):\n"
            "        self._pins[address] = 1\n\n"
            "    def bad_clear(self):\n"
            "        self._pins.clear()\n\n",
            "",
        )
        assert lint_source(guarded_only, file="fixture.py").ok

    def test_classes_without_the_lock_are_unconstrained(self):
        assert not lint_source(LOCKLESS, file="fixture.py").diagnostics

    def test_lint_file_reads_from_disk(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(UNGUARDED)
        report = lint_file(bad)
        assert any(d.code == "RPA301" for d in report.diagnostics)
        assert all(d.file == str(bad) for d in report.diagnostics)


class TestExecutorDiscipline:
    def test_submit_without_drain_is_rpa302(self):
        report = lint_source(SUBMIT_LEAK, file="leak.py")
        assert [d.code for d in report.diagnostics] == ["RPA302"]
        assert report.ok  # a warning, not an error
        assert report.warnings

    def test_submit_with_cleanup_method_is_clean(self):
        assert not lint_source(SUBMIT_CLEAN, file="clean.py").diagnostics

    def test_submit_with_finally_drain_is_clean(self):
        assert not lint_source(SUBMIT_FINALLY, file="clean.py").diagnostics

    def test_cleanup_in_another_file_satisfies_the_tree(self, tmp_path):
        (tmp_path / "submitter.py").write_text(SUBMIT_LEAK)
        (tmp_path / "closer.py").write_text(
            "class Owner:\n"
            "    def close(self):\n"
            "        self.executor.close()\n"
        )
        report = lint_tree(tmp_path)
        assert not report.diagnostics, report.describe()

    def test_tree_without_cleanup_warns(self, tmp_path):
        (tmp_path / "submitter.py").write_text(SUBMIT_LEAK)
        report = lint_tree(tmp_path)
        assert [d.code for d in report.diagnostics] == ["RPA302"]


CHANNEL_LEAK = textwrap.dedent(
    '''
    class Router:
        def dispatch(self, wave):
            self.channel.send_request(wave)
    '''
)

CHANNEL_CLEAN = textwrap.dedent(
    '''
    class Router:
        def dispatch(self, wave):
            self.channel.send_request(wave)

        def close(self):
            self.channel.join()
    '''
)

CHANNEL_JOIN_FINALLY = textwrap.dedent(
    '''
    def serve(channel, wave):
        try:
            channel.send_request(wave)
        finally:
            channel.join()
    '''
)


class TestWorkerChannelDiscipline:
    """RPA302 understands the serving channel's send/join pairing."""

    def test_send_request_without_join_is_rpa302(self):
        report = lint_source(CHANNEL_LEAK, file="leak.py")
        assert [d.code for d in report.diagnostics] == ["RPA302"]
        assert "send_request" in report.diagnostics[0].message
        assert report.ok  # a warning, not an error

    def test_send_request_with_join_in_cleanup_is_clean(self):
        assert not lint_source(CHANNEL_CLEAN, file="clean.py").diagnostics

    def test_send_request_with_finally_join_is_clean(self):
        assert not lint_source(
            CHANNEL_JOIN_FINALLY, file="clean.py"
        ).diagnostics

    def test_join_in_another_file_satisfies_the_tree(self, tmp_path):
        (tmp_path / "router.py").write_text(CHANNEL_LEAK)
        (tmp_path / "reaper.py").write_text(
            "class Owner:\n"
            "    def shutdown(self):\n"
            "        self.channel.join(5.0)\n"
        )
        report = lint_tree(tmp_path)
        assert not report.diagnostics, report.describe()

    def test_serving_package_passes_the_lint(self):
        serving_root = Path(repro.__file__).resolve().parent / "serving"
        report = lint_tree(serving_root)
        assert report.ok, report.describe()
        assert not report.warnings, report.describe()
