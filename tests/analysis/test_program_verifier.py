"""Adversarial corpus for the program verifier (RPA1xx codes)."""

from __future__ import annotations

import types

import pytest

from repro.analysis import (
    CODES,
    Diagnostic,
    VerificationReport,
    verify_all_luts,
    verify_lut,
    verify_program,
    verify_tile_program,
)
from repro.ap.isa import APInstruction, APOpcode, APProgram, ColumnRegion
from repro.ap.lut import LookupTable, get_lut
from repro.errors import AnalysisError

COLUMNS = 32
DOMAINS = 64


def _program(*instructions: APInstruction, carry_column: int = 0) -> APProgram:
    return APProgram(
        instructions=list(instructions), carry_column=carry_column, name="fixture"
    )


def _copy(dest: ColumnRegion, src: ColumnRegion) -> APInstruction:
    return APInstruction(opcode=APOpcode.COPY, dest=dest, src_a=src)


class TestGeometry:
    def test_column_out_of_range_is_rpa101(self):
        program = _program(_copy(ColumnRegion(100, 4), ColumnRegion(2, 4)))
        report = verify_program(program, columns=COLUMNS, domains=DOMAINS)
        assert "RPA101" in report.codes()
        assert not report.ok

    def test_carry_column_out_of_range_is_rpa101(self):
        program = _program(carry_column=COLUMNS + 5)
        report = verify_program(program, columns=COLUMNS, domains=DOMAINS)
        assert "RPA101" in report.codes()

    def test_binding_out_of_range_is_rpa101(self):
        program = _program()
        program.input_columns["x0"] = ColumnRegion(COLUMNS + 1, 4)
        report = verify_program(program, columns=COLUMNS, domains=DOMAINS)
        assert "RPA101" in report.codes()

    def test_domain_overflow_is_rpa102(self):
        region = ColumnRegion(2, width=8, domain_offset=DOMAINS - 4)
        program = _program(_copy(region, ColumnRegion(3, 8)))
        report = verify_program(program, columns=COLUMNS, domains=DOMAINS)
        assert "RPA102" in report.codes()

    def test_carry_collision_is_rpa104(self):
        operand = ColumnRegion(0, 4)  # carry column is 0
        other = ColumnRegion(5, 4)
        instruction = APInstruction(
            opcode=APOpcode.ADD_INPLACE, dest=operand, src_a=other, src_b=operand
        )
        report = verify_program(
            _program(instruction), columns=COLUMNS, domains=DOMAINS
        )
        assert "RPA104" in report.codes()


class TestOpcodeContract:
    def _rogue(self, **fields) -> APInstruction:
        """Build an APInstruction bypassing __post_init__ (corruption model)."""
        instruction = APInstruction.__new__(APInstruction)
        defaults = dict(
            opcode=APOpcode.ADD_INPLACE,
            dest=ColumnRegion(2, 4),
            src_a=ColumnRegion(3, 4),
            src_b=ColumnRegion(2, 4),
            extra_dests=(),
            negate=False,
            comment="",
        )
        defaults.update(fields)
        for name, value in defaults.items():
            object.__setattr__(instruction, name, value)
        return instruction

    def test_arithmetic_missing_source_is_rpa103(self):
        report = verify_program(
            _program(self._rogue(src_b=None)), columns=COLUMNS, domains=DOMAINS
        )
        assert "RPA103" in report.codes()

    def test_unknown_opcode_is_rpa103(self):
        report = verify_program(
            _program(self._rogue(opcode="frobnicate")),
            columns=COLUMNS,
            domains=DOMAINS,
        )
        assert "RPA103" in report.codes()

    def test_inplace_sub_wrong_dest_is_rpa103(self):
        rogue = self._rogue(
            opcode=APOpcode.SUB_INPLACE,
            dest=ColumnRegion(9, 4),
            src_a=ColumnRegion(3, 4),
            src_b=ColumnRegion(4, 4),
        )
        report = verify_program(_program(rogue), columns=COLUMNS, domains=DOMAINS)
        assert "RPA103" in report.codes()


class TestLutTotality:
    def test_all_shipped_luts_are_clean(self):
        assert verify_all_luts().ok

    def test_partial_lut_is_rpa105(self):
        lut = get_lut("add", True)
        partial = LookupTable(
            name="partial-add",
            kind=lut.kind,
            inplace=lut.inplace,
            entries=lut.entries[:-1],
        )
        report = verify_lut(partial)
        assert "RPA105" in report.codes()

    def test_overlapping_lut_is_rpa106(self):
        lut = get_lut("add", True)
        overlapping = LookupTable(
            name="overlap-add",
            kind=lut.kind,
            inplace=lut.inplace,
            entries=(lut.entries[0],) + lut.entries,
        )
        report = verify_lut(overlapping)
        assert "RPA106" in report.codes()


class TestCostCrosscheck:
    def test_cost_model_drift_is_rpa107(self, monkeypatch):
        import repro.analysis.program as program_module

        real = program_module.instruction_cost

        def drifted(instruction, rows, **kwargs):
            cost = real(instruction, rows, **kwargs)
            return types.SimpleNamespace(
                search_phases=cost.search_phases + 1,
                write_phases=cost.write_phases,
            )

        monkeypatch.setattr(program_module, "instruction_cost", drifted)
        program = _program(_copy(ColumnRegion(2, 4), ColumnRegion(3, 4)))
        report = verify_program(program, columns=COLUMNS, domains=DOMAINS)
        assert report.codes() == ["RPA107"]


class TestRealPrograms:
    def test_compiled_programs_verify_clean(self, compiled_pair, accelerator):
        config = accelerator.config
        for layer in compiled_pair.layers:
            for compiled_slice in layer.slices:
                report = verify_program(
                    compiled_slice.program,
                    columns=config.ap.columns,
                    domains=config.technology.domains_per_nanowire,
                    rows=16,
                )
                assert report.ok and not report.diagnostics, report.describe()

    def test_tile_rows_overflow_is_rpa206(self, resident_plan, accelerator):
        import dataclasses

        tile = resident_plan.layers[0].tiles[0]
        bloated = dataclasses.replace(tile, rows=accelerator.config.ap.rows + 1)
        report = verify_tile_program(bloated, accelerator.config)
        assert "RPA206" in report.codes()


class TestDiagnostics:
    def test_unknown_code_is_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="RPA999", message="nope")

    def test_unknown_severity_is_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="RPA101", message="x", severity="fatal")

    def test_every_code_is_documented(self):
        assert all(code.startswith("RPA") for code in CODES)
        assert all(CODES[code] for code in CODES)

    def test_str_carries_code_location_and_message(self):
        diagnostic = Diagnostic(
            code="RPA101", message="out of range", layer="conv1", tile=(0, 1, 2)
        )
        text = str(diagnostic)
        assert "RPA101" in text and "conv1" in text and "(0, 1, 2)" in text

    def test_raise_for_errors_strict_escalates_warnings(self):
        report = VerificationReport(subject="s")
        report.add("RPA302", "leaky", severity="warning")
        report.raise_for_errors()  # warnings alone pass the default gate
        with pytest.raises(AnalysisError) as excinfo:
            report.raise_for_errors(strict=True)
        assert excinfo.value.diagnostics
