"""Fixtures for the static-analysis suite: a small real compiled model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.accelerator import Accelerator
from repro.core.compiler import CompilerConfig, compile_model
from repro.nn.stats import ConvLayerSpec
from repro.nn.ternary import synthetic_ternary_weights
from repro.runtime.plan import build_execution_plan


@pytest.fixture(scope="package")
def compiled_pair():
    """A real two-layer compiled model (with emitted AP programs)."""
    rng = np.random.default_rng(7)
    specs = [
        ConvLayerSpec(
            name="conv1",
            weights=synthetic_ternary_weights((8, 4, 3, 3), sparsity=0.6, rng=rng),
            input_height=8,
            input_width=8,
            stride=1,
            padding=1,
        ),
        ConvLayerSpec(
            name="conv2",
            weights=synthetic_ternary_weights((8, 8, 3, 3), sparsity=0.6, rng=rng),
            input_height=8,
            input_width=8,
            stride=1,
            padding=1,
        ),
    ]
    return compile_model(specs, CompilerConfig(), name="pair", emit_programs=True)


@pytest.fixture
def accelerator():
    """A default-configured accelerator (fresh ledgers per test)."""
    return Accelerator()


@pytest.fixture
def resident_plan(compiled_pair, accelerator):
    """A fresh weight-resident plan of the two-layer model (mutable per test)."""
    return build_execution_plan(compiled_pair, accelerator, placement="resident")


@pytest.fixture
def shared_plan(compiled_pair, accelerator):
    """A fresh shared-placement plan of the two-layer model."""
    return build_execution_plan(compiled_pair, accelerator, placement="shared")
