"""Adversarial corpus for the plan verifier (RPA2xx codes).

Every malformed fixture starts from a *real* plan built by
``build_execution_plan`` and corrupts exactly one property, so each test
pins one ``RPA*`` code to one well-defined defect.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import (
    build_pipeline_tasks,
    verify_execution_plan,
    verify_task_graph,
)
from repro.arch.accelerator import Accelerator
from repro.arch.allocator import LayerDemand, allocate_layer
from repro.arch.config import APConfig, ArchitectureConfig
from repro.errors import AnalysisError, CapacityError
from repro.runtime.pipeline import PipelineTask
from repro.runtime.plan import build_execution_plan


def _unused_address(plan, accelerator):
    used = {tile.address for layer in plan.layers for tile in layer.tiles}
    for address in accelerator.ap_addresses():
        if address not in used:
            return address
    raise AssertionError("fixture plan exhausts the accelerator")


class TestWellFormedPlans:
    def test_fresh_plans_verify_clean(self, compiled_pair, accelerator):
        for placement in ("shared", "resident"):
            plan = build_execution_plan(
                compiled_pair, accelerator, placement=placement
            )
            report = verify_execution_plan(
                plan, accelerator, compiled=compiled_pair
            )
            assert report.ok and not report.diagnostics, report.describe()

    def test_verify_hook_accepts_fresh_plans(self, compiled_pair, accelerator):
        plan = build_execution_plan(
            compiled_pair, accelerator, placement="resident", verify=True
        )
        assert plan.num_tiles > 0


class TestAddressing:
    def test_address_outside_hierarchy_is_rpa201(self, resident_plan, accelerator):
        layer = resident_plan.layers[0]
        layer.tiles[0] = dataclasses.replace(layer.tiles[0], address=(99, 0, 0))
        report = verify_execution_plan(resident_plan, accelerator)
        assert "RPA201" in report.codes()

    def test_resident_group_overlap_is_rpa202(self, resident_plan, accelerator):
        first = resident_plan.layers[0].tiles[0]
        second_layer = resident_plan.layers[1]
        second_layer.tiles[0] = dataclasses.replace(
            second_layer.tiles[0], address=first.address
        )
        report = verify_execution_plan(resident_plan, accelerator)
        assert "RPA202" in report.codes()

    def test_shared_placement_may_reuse_addresses(self, shared_plan, accelerator):
        report = verify_execution_plan(shared_plan, accelerator)
        assert "RPA202" not in report.codes()

    def test_duplicate_tile_coordinates_is_rpa208(self, resident_plan, accelerator):
        layer = resident_plan.layers[0]
        if len(layer.tiles) < 2:
            layer.tiles.append(layer.tiles[0])
        else:
            reference = layer.tiles[0]
            layer.tiles[1] = dataclasses.replace(
                layer.tiles[1],
                row_tile=reference.row_tile,
                channel_group=reference.channel_group,
            )
        report = verify_execution_plan(resident_plan, accelerator)
        assert "RPA208" in report.codes()

    def test_mismatched_layer_identity_is_rpa208(self, resident_plan, accelerator):
        layer = resident_plan.layers[0]
        layer.tiles[0] = dataclasses.replace(layer.tiles[0], layer_name="impostor")
        report = verify_execution_plan(resident_plan, accelerator)
        assert "RPA208" in report.codes()

    def test_mixed_row_geometry_on_resident_ap_is_rpa209(
        self, resident_plan, accelerator
    ):
        layer = resident_plan.layers[0]
        anchor = layer.tiles[0]
        layer.tiles.append(
            dataclasses.replace(
                anchor,
                row_tile=anchor.row_tile + 100,
                rows=max(1, anchor.rows - 1),
            )
        )
        report = verify_execution_plan(resident_plan, accelerator)
        assert "RPA209" in report.codes()

    def test_resident_overuse_is_rpa205(self, resident_plan, compiled_pair, accelerator):
        layer = resident_plan.layers[0]
        anchor = layer.tiles[0]
        layer.tiles.append(
            dataclasses.replace(
                anchor,
                address=_unused_address(resident_plan, accelerator),
                row_tile=anchor.row_tile + 100,
            )
        )
        report = verify_execution_plan(
            resident_plan, accelerator, compiled=compiled_pair
        )
        assert "RPA205" in report.codes()

    def test_column_overflow_is_rpa207(self, compiled_pair):
        narrow = Accelerator(
            ArchitectureConfig(ap=APConfig(rows=256, columns=8, reserved_columns=2))
        )
        plan = build_execution_plan(compiled_pair, placement="shared")
        report = verify_execution_plan(plan, narrow, check_programs=False)
        assert "RPA207" in report.codes()


class TestTaskGraph:
    def _task(self, key, depends_on=()):
        return PipelineTask(
            key=key, group=0, fn=lambda payload: payload, payload=None,
            depends_on=tuple(depends_on),
        )

    def test_cycle_is_rpa203(self):
        tasks = [
            self._task((0, 0), [(0, 1)]),
            self._task((0, 1), [(0, 0)]),
        ]
        report = verify_task_graph(tasks)
        assert "RPA203" in report.codes()

    def test_unknown_dependency_is_rpa204(self):
        report = verify_task_graph([self._task((0, 0), [(9, 9)])])
        assert "RPA204" in report.codes()

    def test_duplicate_key_is_rpa208(self):
        report = verify_task_graph([self._task((0, 0)), self._task((0, 0))])
        assert "RPA208" in report.codes()

    def test_linear_chain_is_clean(self):
        tasks = [
            self._task((0, 0)),
            self._task((0, 1), [(0, 0)]),
            self._task((1, 0), [(0, 1)]),
        ]
        assert verify_task_graph(tasks).ok

    def test_plan_task_graph_matches_runtime_shape(self, resident_plan):
        tasks = build_pipeline_tasks(resident_plan)
        assert len(tasks) == resident_plan.num_tiles
        assert verify_task_graph(tasks).ok


class TestVerifyHook:
    def test_corrupted_plan_fails_raise_for_errors(self, resident_plan, accelerator):
        layer = resident_plan.layers[0]
        layer.tiles[0] = dataclasses.replace(layer.tiles[0], address=(99, 0, 0))
        report = verify_execution_plan(resident_plan, accelerator)
        with pytest.raises(AnalysisError) as excinfo:
            report.raise_for_errors()
        assert any(
            getattr(diagnostic, "code", None) == "RPA201"
            for diagnostic in excinfo.value.diagnostics
        )

    def test_session_deploy_with_verify(self, compiled_pair):
        from repro.session import Session, SessionConfig

        config = SessionConfig(model="vgg9", width=0.125, slices=1, verify=True)
        with Session(config) as session:
            session.compile().deploy()
            assert session.plan is not None


class TestStructuredCapacityErrors:
    def test_allocator_carries_requested_and_available(self):
        demand = LayerDemand(name="wide", row_tiles=5, channel_groups=1)
        with pytest.raises(CapacityError) as excinfo:
            allocate_layer(demand, available_aps=2)
        assert excinfo.value.requested == 5
        assert excinfo.value.available == 2
        assert excinfo.value.resident_aps_required is None

    def test_resident_oversubscription_carries_all_fields(self, compiled_pair):
        single_ap = Accelerator(
            ArchitectureConfig(aps_per_tile=1, tiles_per_bank=1, num_banks=1)
        )
        with pytest.raises(CapacityError) as excinfo:
            build_execution_plan(compiled_pair, single_ap, placement="resident")
        error = excinfo.value
        assert error.resident_aps_required is not None
        assert error.requested is not None and error.available == 1
        # The message keeps the machine-readable hint for log scrapers.
        assert f"resident_aps_required={error.resident_aps_required}" in str(error)
