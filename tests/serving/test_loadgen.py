"""The load generator: seeded Poisson arrivals, open-loop runs, saturation."""

import pytest

from repro.errors import ClusterError
from repro.serving import LoadReport, poisson_arrivals, run_load, saturate


class TestPoissonArrivals:
    def test_deterministic_for_a_seed(self):
        first = poisson_arrivals(qps=50, duration_s=2.0, rng=7)
        second = poisson_arrivals(qps=50, duration_s=2.0, rng=7)
        assert first == second
        assert first != poisson_arrivals(qps=50, duration_s=2.0, rng=8)

    def test_rate_and_window(self):
        arrivals = poisson_arrivals(qps=100, duration_s=5.0, rng=0)
        assert all(0 < offset < 5.0 for offset in arrivals)
        assert arrivals == sorted(arrivals)
        # Open-loop Poisson: expect ~qps * duration arrivals (500 +- 5 sigma).
        assert 380 < len(arrivals) < 620

    @pytest.mark.parametrize("qps,duration", [(0, 1.0), (-1, 1.0), (5, 0)])
    def test_rejects_bad_rates(self, qps, duration):
        with pytest.raises(ClusterError):
            poisson_arrivals(qps=qps, duration_s=duration)


class TestLoadReport:
    def test_to_metrics_schema(self):
        report = LoadReport(
            offered_qps=10.0,
            duration_s=2.0,
            requests=20,
            admitted=18,
            rejected=2,
            completed=17,
            failed=1,
            wall_s=2.5,
            latency_p50_ms=12.0,
            latency_p99_ms=80.0,
            latency_mean_ms=20.0,
            waves=9,
            mean_wave_size=2.0,
        )
        metrics = report.to_metrics()
        assert metrics["latency_p50_ms"] == 12.0
        assert metrics["latency_p99_ms"] == 80.0
        assert metrics["achieved_qps"] == pytest.approx(17 / 2.5)
        assert metrics["rejected"] == 2
        assert report.dropped == 1


class TestOpenLoop:
    def test_run_load_serves_the_schedule(self, cluster):
        report = run_load(cluster, qps=6, duration_s=1.0, rng=3)
        assert report.requests == len(
            poisson_arrivals(qps=6, duration_s=1.0, rng=3)
        )
        assert report.admitted == report.requests - report.rejected
        assert report.completed + report.failed <= report.admitted
        assert report.failed == 0
        if report.completed:
            assert report.latency_p50_ms > 0
            assert report.latency_p99_ms >= report.latency_p50_ms

    def test_run_load_requires_started_cluster(self):
        from repro.serving import Cluster, ClusterConfig

        from tests.serving.conftest import SERVING_CONFIG

        cluster = Cluster(ClusterConfig(replicas=1, **SERVING_CONFIG))
        with pytest.raises(ClusterError, match="not started"):
            run_load(cluster, qps=5, duration_s=0.5)
        cluster.close()


class TestSaturation:
    def test_saturate_counts_every_request(self, cluster):
        qps = saturate(cluster, requests=6, rng=5)
        assert qps > 0

    def test_saturate_rejects_bad_count(self, cluster):
        with pytest.raises(ClusterError):
            saturate(cluster, requests=0)
