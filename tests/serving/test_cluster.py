"""The cluster: byte-identity, residency, routing, gather, lifecycle."""

import numpy as np
import pytest

from repro.errors import ClusterError, ConfigurationError
from repro.serving import Cluster, ClusterConfig, ClusterResult

from tests.serving.conftest import SERVING_CONFIG, make_images


class TestClusterConfig:
    def test_session_config_mirrors_model_fields(self, cluster_config):
        derived = cluster_config.session_config()
        assert derived.model == cluster_config.model
        assert derived.width == cluster_config.width
        assert derived.seed == cluster_config.seed
        # Workers never trace/record on their own: spans are shipped back.
        assert derived.trace is False
        assert derived.metrics is False

    def test_rejects_module_tree_models(self):
        with pytest.raises(ConfigurationError, match="registry names"):
            ClusterConfig(model=object())  # type: ignore[arg-type]

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(replicas=0),
            dict(queue_depth=0),
            dict(max_wave=0),
            dict(admission_timeout_s=-1.0),
            dict(routing="random"),
            dict(trace=7),
        ],
    )
    def test_rejects_bad_knobs(self, overrides):
        with pytest.raises(ConfigurationError):
            ClusterConfig(**overrides)

    def test_trace_path(self):
        assert ClusterConfig(trace="out.json").trace_path == "out.json"
        assert ClusterConfig(trace=True).trace_path is None
        assert ClusterConfig(trace=True).trace_enabled
        assert not ClusterConfig().trace_enabled


class TestByteIdentity:
    def test_infer_matches_single_process_session(
        self, cluster, reference_logits
    ):
        images, reference = reference_logits
        result = cluster.infer(images)
        assert isinstance(result, ClusterResult)
        assert result.logits.tobytes() == reference.tobytes()
        assert result.images == len(images)

    def test_every_replica_serves_identical_logits(
        self, cluster, reference_logits
    ):
        images, reference = reference_logits
        for replica in range(cluster.config.replicas):
            cluster.submit(images, replica=replica)
            (result,) = cluster.gather()
            assert result.replica == replica
            assert result.logits.tobytes() == reference.tobytes()

    def test_coalesced_wave_matches_per_request_serving(
        self, cluster, reference_logits
    ):
        images, reference = reference_logits
        # One wave of three requests == three single-request results.
        cluster.submit_wave([images[:2], images[2:5], images[5:]])
        wave_results = cluster.gather()
        stitched = np.concatenate([result.logits for result in wave_results])
        assert stitched.tobytes() == reference.tobytes()

    def test_single_image_requests_are_batched(self, cluster, reference_logits):
        images, reference = reference_logits
        result = cluster.infer(images[0])  # unbatched (C, H, W) input
        assert result.logits.shape == (1,) + reference.shape[1:]
        assert result.logits.tobytes() == reference[:1].tobytes()


class TestResidency:
    def test_every_replica_stays_warm_after_deploy(self, cluster):
        images = make_images(2)
        for _ in range(3):
            cluster.infer(images)
        stats = cluster.stats()
        assert stats.all_warm
        for replica in stats.replicas:
            assert replica.cold_leases == 0
            assert replica.cold_reprograms == 0
            assert replica.aps_pinned > 0
            assert replica.tile_programs > 0

    def test_warm_hits_accumulate_per_replica(self, cluster):
        images = make_images(1)
        before = {
            stats.replica: stats.warm_hits
            for stats in cluster.stats().replicas
        }
        result = cluster.infer(images)
        after = {
            stats.replica: stats.warm_hits
            for stats in cluster.stats().replicas
        }
        assert after[result.replica] > before[result.replica]


class TestRoutingAndGather:
    def test_round_robin_spreads_requests(self, cluster):
        images = make_images(1)
        for _ in range(4):
            cluster.submit(images)
        replicas = {result.replica for result in cluster.gather()}
        assert replicas == {0, 1}

    def test_gather_returns_submission_order(self, cluster):
        images = make_images(1)
        handles = [cluster.submit(images) for _ in range(4)]
        results = cluster.gather()
        assert [result.request_id for result in results] == [
            handle.request_id for handle in handles
        ]

    def test_pinned_submit_routes_to_that_replica(self, cluster):
        images = make_images(1)
        cluster.submit(images, replica=1)
        (result,) = cluster.gather()
        assert result.replica == 1

    def test_unknown_replica_rejected(self, cluster):
        with pytest.raises(ClusterError, match="no such replica"):
            cluster.submit(make_images(1), replica=99)

    def test_least_loaded_routing(self):
        config = ClusterConfig(
            replicas=2, routing="least-loaded", **SERVING_CONFIG
        )
        with Cluster(config) as cluster:
            cluster.start()
            images = make_images(1)
            for _ in range(4):
                cluster.submit(images)
            replicas = [result.replica for result in cluster.gather()]
            assert set(replicas) == {0, 1}

    def test_stats_counts_requests_and_dispatches(self, cluster):
        stats = cluster.stats()
        assert stats.requests > 0
        assert stats.live_replicas == 2
        assert sum(r.dispatches for r in stats.replicas) >= stats.requests


class TestLifecycle:
    def test_submit_before_start_raises(self):
        cluster = Cluster(ClusterConfig(replicas=1, **SERVING_CONFIG))
        with pytest.raises(ClusterError, match="not started"):
            cluster.submit(make_images(1))
        cluster.close()

    def test_double_start_raises(self, cluster):
        with pytest.raises(ClusterError, match="already started"):
            cluster.start()

    def test_metrics_registry_flat_schema(self, cluster):
        cluster.infer(make_images(1))
        flat = cluster.metrics_registry().flat()
        assert flat["replicas"] == 2
        assert flat["replicas_live"] == 2
        assert any(key.startswith("requests_served") for key in flat)
        assert "request_latency_ms_p50" in flat

    def test_close_is_idempotent_and_stops_serving(self):
        config = ClusterConfig(replicas=1, **SERVING_CONFIG)
        cluster = Cluster(config)
        cluster.start()
        cluster.infer(make_images(1))
        cluster.close()
        cluster.close()
        assert cluster.stats().live_replicas == 0
        with pytest.raises(ClusterError, match="closed"):
            cluster.submit(make_images(1))
