"""Shared fixtures of the cluster-serving suite.

One module-scoped two-replica cluster serves most tests (start-up compiles
the model and forks workers, so sharing it keeps the suite fast); failure
tests that kill workers build their own throwaway clusters.
"""

import numpy as np
import pytest

from repro.serving import Cluster, ClusterConfig


#: The narrow registry build every serving test deploys (fast on one core).
SERVING_CONFIG = dict(model="vgg9", width=1 / 16, seed=0)


@pytest.fixture(scope="session")
def cluster_config() -> ClusterConfig:
    return ClusterConfig(
        replicas=2, max_wave=4, queue_depth=8, **SERVING_CONFIG
    )


@pytest.fixture(scope="session")
def cluster(cluster_config):
    """A started two-replica cluster shared by the read-only tests."""
    with Cluster(cluster_config) as instance:
        instance.start()
        yield instance


@pytest.fixture(scope="session")
def reference_logits(cluster):
    """Single-process ``Session.infer`` logits for the shared test images."""
    from repro.session import Session, SessionConfig

    images = make_images(6)
    with Session(SessionConfig(**SERVING_CONFIG)) as session:
        session.compile().deploy()
        return images, session.infer(images).logits


def make_images(count: int) -> np.ndarray:
    """Deterministic CIFAR-shaped images shared across the suite."""
    rng = np.random.default_rng(42)
    return rng.uniform(0.0, 1.0, size=(count, 3, 32, 32))
