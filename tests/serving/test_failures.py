"""Graceful degradation: typed per-request failures, worker death, teardown."""

import asyncio
import time

import numpy as np
import pytest

from repro.errors import ClusterError, RequestError
from repro.serving import Cluster, ClusterConfig, Frontend

from tests.serving.conftest import SERVING_CONFIG, make_images


@pytest.fixture
def fresh_cluster():
    """A throwaway two-replica cluster the test may freely damage."""
    with Cluster(ClusterConfig(replicas=2, **SERVING_CONFIG)) as cluster:
        cluster.start()
        yield cluster


def wait_until(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestInWorkerFailures:
    def test_bad_request_fails_typed_and_replica_survives(self, fresh_cluster):
        bad = np.zeros((1, 3, 7, 7))  # wrong spatial shape for the deploy
        handle = fresh_cluster.submit(bad, replica=0)
        with pytest.raises(RequestError) as excinfo:
            handle.result(60)
        error = excinfo.value
        assert error.request_id == handle.request_id
        assert error.replica == 0
        assert error.cause
        # The replica that failed the wave keeps serving good requests.
        fresh_cluster.gather(return_exceptions=True)
        good = fresh_cluster.submit(make_images(1), replica=0)
        assert good.result(60).replica == 0
        stats = fresh_cluster.stats()
        assert stats.live_replicas == 2
        assert stats.replicas[0].failures == 1

    def test_gather_surfaces_first_failure_after_draining(self, fresh_cluster):
        fresh_cluster.submit(make_images(1), replica=0)
        fresh_cluster.submit(np.zeros((1, 3, 7, 7)), replica=1)
        fresh_cluster.submit(make_images(1), replica=0)
        with pytest.raises(RequestError):
            fresh_cluster.gather(60)
        # The failed gather still drained: nothing left outstanding.
        assert fresh_cluster.gather(60) == []

    def test_gather_return_exceptions_keeps_order(self, fresh_cluster):
        handles = [
            fresh_cluster.submit(make_images(1), replica=0),
            fresh_cluster.submit(np.zeros((1, 3, 7, 7)), replica=1),
            fresh_cluster.submit(make_images(1), replica=0),
        ]
        outcomes = fresh_cluster.gather(60, return_exceptions=True)
        assert len(outcomes) == 3
        assert outcomes[0].request_id == handles[0].request_id
        assert isinstance(outcomes[1], RequestError)
        assert outcomes[1].request_id == handles[1].request_id
        assert outcomes[2].request_id == handles[2].request_id


class TestWorkerDeath:
    def test_killed_worker_fails_only_its_in_flight_requests(
        self, fresh_cluster
    ):
        images = make_images(1)
        victim = fresh_cluster.submit(images, replica=0)
        fresh_cluster._replicas[0].process.kill()
        with pytest.raises(RequestError) as excinfo:
            victim.result(60)
        assert excinfo.value.replica == 0
        assert "died" in excinfo.value.cause
        assert wait_until(
            lambda: fresh_cluster.stats().live_replicas == 1
        )
        # The survivor serves; routing no longer offers the dead replica.
        fresh_cluster.gather(return_exceptions=True)
        for _ in range(3):
            assert fresh_cluster.infer(images).replica == 1
        with pytest.raises(ClusterError, match="not alive"):
            fresh_cluster.submit(images, replica=0)

    def test_all_replicas_dead_raises_cluster_error(self, fresh_cluster):
        for replica in fresh_cluster._replicas:
            replica.process.kill()
        assert wait_until(
            lambda: fresh_cluster.stats().live_replicas == 0
        )
        with pytest.raises(ClusterError, match="no live replicas"):
            fresh_cluster.submit(make_images(1))

    def test_frontend_reroutes_new_requests_after_death(self, fresh_cluster):
        images = make_images(1)

        async def scenario():
            async with Frontend(cluster=fresh_cluster) as frontend:
                first = await frontend.request(images)
                fresh_cluster._replicas[0].process.kill()
                await asyncio.get_running_loop().run_in_executor(
                    None,
                    lambda: wait_until(
                        lambda: fresh_cluster.stats().live_replicas == 1
                    ),
                )
                survivors = await asyncio.gather(
                    *[frontend.request(images) for _ in range(3)]
                )
                return first, survivors

        first, survivors = asyncio.run(scenario())
        assert {result.replica for result in survivors} == {1}

    def test_close_after_worker_death_is_exception_safe(self, fresh_cluster):
        fresh_cluster.submit(make_images(1))
        fresh_cluster._replicas[0].process.kill()
        fresh_cluster._replicas[1].process.kill()
        fresh_cluster.close()
        fresh_cluster.close()
        assert fresh_cluster.stats().live_replicas == 0

    def test_close_fails_stranded_requests_typed(self):
        """Requests still pending when workers are gone fail, never hang."""
        with Cluster(ClusterConfig(replicas=1, **SERVING_CONFIG)) as cluster:
            cluster.start()
            handle = cluster.submit(make_images(1))
            cluster._replicas[0].process.kill()
            cluster.close()
            with pytest.raises(RequestError):
                handle.result(5)
