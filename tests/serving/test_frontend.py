"""The asyncio front door: admission, continuous batching, graceful drain."""

import asyncio

import numpy as np
import pytest

from repro.errors import AdmissionError
from repro.serving import Frontend

from tests.serving.conftest import make_images


def run(coroutine):
    """The suite has no async plugin; every test drives its own loop."""
    return asyncio.run(coroutine)


class TestAdmission:
    def test_request_served_through_front_door(self, cluster, reference_logits):
        images, reference = reference_logits

        async def scenario():
            async with Frontend(cluster) as frontend:
                result = await frontend.request(images)
            return result

        result = run(scenario())
        assert result.logits.tobytes() == reference.tobytes()

    def test_closed_front_door_rejects(self, cluster):
        async def scenario():
            frontend = Frontend(cluster)
            await frontend.start()
            await frontend.close()
            with pytest.raises(AdmissionError, match="closed"):
                await frontend.request(make_images(1))
            return frontend

        frontend = run(scenario())
        assert frontend.rejected == 1

    def test_full_queue_rejects_with_backpressure(self, cluster):
        """A stalled dispatcher + full queue must reject, not hang."""

        async def scenario():
            frontend = Frontend(
                cluster, queue_depth=2, admission_timeout_s=0.05
            )
            await frontend.start()
            # Stall the dispatcher so the queue can actually fill up.
            frontend._dispatcher.cancel()
            try:
                await frontend._dispatcher
            except asyncio.CancelledError:
                pass
            images = make_images(1)
            admitted = []
            for _ in range(2):
                admitted.append(
                    asyncio.ensure_future(frontend.request(images))
                )
                await asyncio.sleep(0)
            with pytest.raises(AdmissionError) as excinfo:
                await frontend.request(images)
            for task in admitted:
                task.cancel()
            return frontend, excinfo.value

        frontend, error = run(scenario())
        assert error.queue_depth == 2
        assert error.timeout_s == pytest.approx(0.05)
        assert frontend.rejected == 1


class TestContinuousBatching:
    def test_queued_requests_coalesce_into_waves(
        self, cluster, reference_logits
    ):
        images, reference = reference_logits

        async def scenario():
            async with Frontend(cluster, max_wave=8) as frontend:
                results = await asyncio.gather(
                    *[
                        frontend.request(images[index : index + 1])
                        for index in range(len(images))
                    ]
                )
                return frontend.waves, frontend.completed, results

        waves, completed, results = run(scenario())
        assert completed == len(images)
        # Concurrent arrivals coalesce: strictly fewer waves than requests.
        assert waves < len(images)
        stitched = np.concatenate([result.logits for result in results])
        assert stitched.tobytes() == reference.tobytes()

    def test_wave_respects_max_wave(self, cluster):
        images = make_images(1)

        async def scenario():
            async with Frontend(cluster, max_wave=2) as frontend:
                await asyncio.gather(
                    *[frontend.request(images) for _ in range(6)]
                )
                return list(frontend._wave_sizes)

        wave_sizes = run(scenario())
        assert wave_sizes
        assert max(wave_sizes) <= 2


class TestDrainAndClose:
    def test_close_flushes_in_flight_requests(self, cluster):
        images = make_images(1)

        async def scenario():
            frontend = Frontend(cluster)
            await frontend.start()
            pending = [
                asyncio.ensure_future(frontend.request(images))
                for _ in range(4)
            ]
            await asyncio.sleep(0)  # let admissions enqueue
            await frontend.close()
            results = await asyncio.gather(*pending)
            return frontend, results

        frontend, results = run(scenario())
        assert len(results) == 4
        assert frontend.completed == 4
        assert frontend.depth() == 0
        assert frontend.in_flight() == 0

    def test_close_is_idempotent(self, cluster):
        async def scenario():
            frontend = Frontend(cluster)
            await frontend.start()
            await frontend.close()
            await frontend.close()

        run(scenario())

    def test_metrics_registry_includes_queue_and_waves(self, cluster):
        images = make_images(1)

        async def scenario():
            async with Frontend(cluster) as frontend:
                await frontend.request(images)
                return frontend.metrics_registry().flat()

        flat = run(scenario())
        assert flat["queue_depth"] == 0
        assert flat["queue_capacity"] == cluster.config.queue_depth
        assert flat["requests_admitted"] >= 1
        assert flat["waves_dispatched"] >= 1
        assert "wave_size_mean" in flat
        assert "frontdoor_latency_ms_p50" in flat
