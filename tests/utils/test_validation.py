"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, QuantizationError
from repro.utils import validation


class TestScalarChecks:
    def test_check_positive_accepts(self):
        validation.check_positive("x", 3)

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            validation.check_positive("x", 0)

    def test_check_non_negative_accepts_zero(self):
        validation.check_non_negative("x", 0)

    def test_check_non_negative_rejects(self):
        with pytest.raises(ConfigurationError):
            validation.check_non_negative("x", -1)

    def test_check_in_range(self):
        validation.check_in_range("x", 5, 0, 10)
        with pytest.raises(ConfigurationError):
            validation.check_in_range("x", 11, 0, 10)

    def test_check_probability(self):
        validation.check_probability("p", 0.5)
        with pytest.raises(ConfigurationError):
            validation.check_probability("p", 1.5)

    def test_check_power_of_two(self):
        validation.check_power_of_two("n", 64)
        with pytest.raises(ConfigurationError):
            validation.check_power_of_two("n", 48)
        with pytest.raises(ConfigurationError):
            validation.check_power_of_two("n", 0)


class TestTernaryCheck:
    def test_accepts_ternary(self):
        out = validation.check_ternary(np.array([[1, 0], [-1, 1]]))
        assert out.dtype == np.int8

    def test_rejects_non_ternary(self):
        with pytest.raises(QuantizationError):
            validation.check_ternary(np.array([0, 2]))

    def test_rejects_fractional(self):
        with pytest.raises(QuantizationError):
            validation.check_ternary(np.array([0.5, 1.0]))
