"""Tests for the seeded RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng, make_rng


class TestMakeRng:
    def test_none_is_deterministic(self):
        a = make_rng(None).integers(0, 1000, 10)
        b = make_rng(None).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_integer_seed_is_deterministic(self):
        a = make_rng(42).integers(0, 1000, 10)
        b = make_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1000, 10)
        b = make_rng(2).integers(0, 1000, 10)
        assert not np.array_equal(a, b)

    def test_passthrough_generator(self):
        generator = np.random.default_rng(7)
        assert make_rng(generator) is generator


class TestDeriveRng:
    def test_streams_are_independent(self):
        base = make_rng(3)
        child_a = derive_rng(base, 0)
        base2 = make_rng(3)
        child_b = derive_rng(base2, 1)
        assert not np.array_equal(
            child_a.integers(0, 1000, 10), child_b.integers(0, 1000, 10)
        )

    def test_negative_stream_rejected(self):
        with pytest.raises(ValueError):
            derive_rng(make_rng(0), -1)
