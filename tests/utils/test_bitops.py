"""Tests for two's-complement and bit-vector helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import QuantizationError
from repro.utils import bitops


class TestWidths:
    def test_bits_for_unsigned_zero(self):
        assert bitops.bits_for_unsigned_max(0) == 1

    def test_bits_for_unsigned_powers(self):
        assert bitops.bits_for_unsigned_max(1) == 1
        assert bitops.bits_for_unsigned_max(2) == 2
        assert bitops.bits_for_unsigned_max(255) == 8
        assert bitops.bits_for_unsigned_max(256) == 9

    def test_bits_for_unsigned_rejects_negative(self):
        with pytest.raises(ValueError):
            bitops.bits_for_unsigned_max(-1)

    def test_bits_for_signed_range_symmetric(self):
        assert bitops.bits_for_signed_range(-8, 7) == 4
        assert bitops.bits_for_signed_range(-9, 0) == 5

    def test_bits_for_signed_range_positive_only(self):
        assert bitops.bits_for_signed_range(0, 7) == 4
        assert bitops.bits_for_signed_range(0, 8) == 5

    def test_bits_for_signed_range_rejects_empty(self):
        with pytest.raises(ValueError):
            bitops.bits_for_signed_range(3, 2)

    def test_min_max_signed(self):
        assert bitops.min_signed_value(8) == -128
        assert bitops.max_signed_value(8) == 127
        assert bitops.max_unsigned_value(8) == 255

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            bitops.min_signed_value(0)


class TestTwosComplement:
    def test_roundtrip_small_values(self):
        for width in (1, 2, 4, 8, 12):
            lo, hi = bitops.min_signed_value(width), bitops.max_signed_value(width)
            for value in range(lo, hi + 1):
                code = bitops.to_twos_complement(value, width)
                assert 0 <= code < (1 << width)
                assert bitops.from_twos_complement(code, width) == value

    def test_out_of_range_rejected(self):
        with pytest.raises(QuantizationError):
            bitops.to_twos_complement(128, 8)
        with pytest.raises(QuantizationError):
            bitops.to_twos_complement(-129, 8)

    def test_invalid_code_rejected(self):
        with pytest.raises(QuantizationError):
            bitops.from_twos_complement(256, 8)

    def test_sign_extend_preserves_value(self):
        code = bitops.to_twos_complement(-5, 4)
        extended = bitops.sign_extend(code, 4, 8)
        assert bitops.from_twos_complement(extended, 8) == -5

    def test_sign_extend_rejects_narrowing(self):
        with pytest.raises(ValueError):
            bitops.sign_extend(0b1111, 4, 3)

    @given(st.integers(min_value=-(2**15), max_value=2**15 - 1))
    def test_roundtrip_property(self, value):
        width = bitops.bits_for_signed_range(value, value)
        code = bitops.to_twos_complement(value, width)
        assert bitops.from_twos_complement(code, width) == value


class TestBitVectors:
    def test_int_to_bits_lsb_first(self):
        bits = bitops.int_to_bits(6, 4)
        assert list(bits) == [0, 1, 1, 0]

    def test_negative_value_bits(self):
        bits = bitops.int_to_bits(-1, 4)
        assert list(bits) == [1, 1, 1, 1]

    def test_bits_to_int_signed(self):
        assert bitops.bits_to_int([1, 1, 1, 1], signed=True) == -1
        assert bitops.bits_to_int([1, 1, 1, 1], signed=False) == 15

    def test_bits_to_int_rejects_empty(self):
        with pytest.raises(ValueError):
            bitops.bits_to_int([])

    def test_bits_to_int_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bitops.bits_to_int([0, 2, 1])

    @given(st.integers(min_value=-2048, max_value=2047), st.integers(min_value=12, max_value=20))
    def test_bit_vector_roundtrip(self, value, width):
        bits = bitops.int_to_bits(value, width)
        assert bitops.bits_to_int(bits, signed=True) == value

    def test_vector_to_bit_matrix_roundtrip(self, ):
        values = [-8, -1, 0, 3, 7]
        matrix = bitops.vector_to_bit_matrix(values, 5)
        assert matrix.shape == (5, 5)
        restored = bitops.bit_matrix_to_vector(matrix, signed=True)
        assert list(restored) == values

    def test_bit_matrix_to_vector_rejects_1d(self):
        with pytest.raises(ValueError):
            bitops.bit_matrix_to_vector(np.zeros(4))

    def test_vector_to_bit_matrix_rejects_out_of_range(self):
        with pytest.raises(QuantizationError):
            bitops.vector_to_bit_matrix([16], 5)
        with pytest.raises(QuantizationError):
            bitops.vector_to_bit_matrix([-17], 5)

    def test_vector_to_bit_matrix_rejects_huge_unsigned(self):
        """uint64 values beyond int64 must raise, not wrap into range."""
        with pytest.raises(QuantizationError):
            bitops.vector_to_bit_matrix(np.array([2**64 - 1], dtype=np.uint64), 8)
        with pytest.raises(QuantizationError):
            bitops.vector_to_bit_matrix([2**64 - 1], 8)

    def test_vector_to_bit_matrix_non_integer_values(self):
        matrix = bitops.vector_to_bit_matrix([3.0, -2.0], 4)
        assert list(bitops.bit_matrix_to_vector(matrix)) == [3, -2]

    def test_wide_words_roundtrip(self):
        values = [-(2**63), 2**63 - 1, 0, -1]
        matrix = bitops.vector_to_bit_matrix(values, 64)
        assert list(bitops.bit_matrix_to_vector(matrix, signed=True)) == values

    def test_pack_bits_int64_matches_decoder(self):
        matrix = bitops.vector_to_bit_matrix([-8, -1, 0, 3, 7], 5)
        assert list(bitops.pack_bits_int64(matrix)) == [-8, -1, 0, 3, 7]
        assert list(bitops.pack_bits_int64(matrix, signed=False)) == [
            24, 31, 0, 3, 7,
        ]
