"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self):
        arguments = build_parser().parse_args(["compile"])
        assert arguments.model == "vgg9"
        assert arguments.bits == 4
        assert arguments.batch == 1

    def test_table2_network_filter(self):
        arguments = build_parser().parse_args(["table2", "--networks", "vgg9"])
        assert arguments.networks == ["vgg9"]

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "--model", "alexnet"])


class TestCommands:
    def test_endurance_command(self, capsys):
        assert main(["endurance"]) == 0
        output = capsys.readouterr().out
        assert "lifetime" in output

    def test_compile_command_small(self, capsys):
        assert main(["compile", "--model", "vgg9", "--slices", "2", "--batch", "2"]) == 0
        output = capsys.readouterr().out
        assert "CAM arrays" in output
        assert "unroll+CSE" in output

    def test_fig4_command_sampled(self, capsys):
        assert main(["fig4", "--model", "vgg9", "--slices", "2"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 4" in output
