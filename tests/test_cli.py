"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self):
        arguments = build_parser().parse_args(["compile"])
        assert arguments.model == "vgg9"
        assert arguments.bits == 4
        assert arguments.batch == 1

    def test_table2_network_filter(self):
        arguments = build_parser().parse_args(["table2", "--networks", "vgg9"])
        assert arguments.networks == ["vgg9"]

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "--model", "alexnet"])

    def test_run_defaults(self):
        arguments = build_parser().parse_args(["run"])
        assert arguments.executor == "serial"
        assert arguments.workers is None
        assert arguments.seed == 0

    def test_run_executor_choices(self):
        arguments = build_parser().parse_args(
            ["run", "--executor", "parallel", "--workers", "4"]
        )
        assert arguments.executor == "parallel"
        assert arguments.workers == 4
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--executor", "bogus"])

    def test_apbench_seed_flag(self):
        arguments = build_parser().parse_args(["apbench", "--seed", "11"])
        assert arguments.seed == 11

    def test_infer_defaults(self):
        arguments = build_parser().parse_args(["infer"])
        assert arguments.model == "vgg9"
        assert arguments.images == 1
        assert arguments.batch is None
        assert arguments.width is None
        assert arguments.executor == "serial"

    def test_serve_defaults(self):
        arguments = build_parser().parse_args(["serve"])
        assert arguments.model == "vgg9"
        assert arguments.requests == 8
        assert arguments.images == 2
        assert arguments.executor == "serial"
        assert arguments.seed == 0
        assert arguments.concurrency == 1
        assert arguments.pipeline is False
        assert arguments.json is False

    def test_serve_pipeline_flags(self):
        arguments = build_parser().parse_args(
            ["serve", "--concurrency", "3", "--pipeline", "--json"]
        )
        assert arguments.concurrency == 3
        assert arguments.pipeline is True
        assert arguments.json is True
        infer_arguments = build_parser().parse_args(["infer", "--pipeline"])
        assert infer_arguments.pipeline is True

    def test_serve_flags(self):
        arguments = build_parser().parse_args(
            ["serve", "--model", "vgg9", "--width", "0.03125", "--requests", "3",
             "--images", "1", "--executor", "thread", "--workers", "2"]
        )
        assert arguments.requests == 3
        assert arguments.images == 1
        assert arguments.width == 0.03125
        assert arguments.executor == "thread"

    def test_cluster_defaults(self):
        arguments = build_parser().parse_args(["cluster"])
        assert arguments.command == "cluster"
        assert arguments.replicas == 2
        assert arguments.qps == 8.0
        assert arguments.duration == 2.0
        assert arguments.routing == "round-robin"
        assert arguments.queue_depth == 64
        assert arguments.max_wave == 4
        assert not arguments.json

    def test_cluster_flags(self):
        arguments = build_parser().parse_args(
            ["cluster", "--replicas", "4", "--qps", "16", "--duration", "3",
             "--routing", "least-loaded", "--queue-depth", "8",
             "--max-wave", "2", "--json"]
        )
        assert arguments.replicas == 4
        assert arguments.qps == 16.0
        assert arguments.routing == "least-loaded"
        assert arguments.queue_depth == 8
        assert arguments.max_wave == 2
        assert arguments.json

    def test_infer_flags(self):
        arguments = build_parser().parse_args(
            ["infer", "--model", "resnet18", "--width", "0.0625", "--images", "2",
             "--batch", "1", "--executor", "thread", "--workers", "2"]
        )
        assert arguments.model == "resnet18"
        assert arguments.width == 0.0625
        assert arguments.images == 2
        assert arguments.batch == 1
        assert arguments.executor == "thread"
        assert arguments.workers == 2


class TestCommands:
    def test_endurance_command(self, capsys):
        assert main(["endurance"]) == 0
        output = capsys.readouterr().out
        assert "lifetime" in output

    def test_compile_command_small(self, capsys):
        assert main(["compile", "--model", "vgg9", "--slices", "2", "--batch", "2"]) == 0
        output = capsys.readouterr().out
        assert "CAM arrays" in output
        assert "unroll+CSE" in output

    def test_fig4_command_sampled(self, capsys):
        assert main(["fig4", "--model", "vgg9", "--slices", "2"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 4" in output

    def test_run_command_serial(self, capsys):
        assert main(["run", "--model", "vgg9", "--slices", "1",
                     "--layers", "2", "--seed", "9"]) == 0
        output = capsys.readouterr().out
        assert "functional plan execution" in output
        assert "cost model consistent" in output
        assert "seed 9" in output

    def test_run_command_parallel(self, capsys):
        assert main(["run", "--model", "vgg9", "--slices", "1", "--layers", "2",
                     "--executor", "parallel", "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "parallel executor, 2 worker(s)" in output

    def test_infer_command_narrow_vgg9(self, capsys):
        assert main(["infer", "--model", "vgg9", "--width", "0.03125",
                     "--images", "2", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "end-to-end inference of 2 image(s)" in output
        assert "logits byte-identical to the NumPy reference" in output
        assert "cost model consistent" in output

    def test_infer_command_batched_threads(self, capsys):
        assert main(["infer", "--model", "vgg9", "--width", "0.03125",
                     "--images", "2", "--batch", "1",
                     "--executor", "thread", "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "thread executor, 2 worker(s)" in output
        assert "byte-identical" in output

    def test_serve_command_warm_steady_state(self, capsys):
        assert main(["serve", "--model", "vgg9", "--width", "0.03125",
                     "--requests", "2", "--images", "1", "--seed", "4"]) == 0
        output = capsys.readouterr().out
        assert "deploy cost" in output
        assert "per-request cost" in output
        assert "amortized energy / request" in output
        assert "0 cold lease events and 0 CAM reprogram events after deploy" in output
        assert "cost model consistent" in output

    def test_serve_command_overlapped_clients(self, capsys):
        """--concurrency > 1 drives submit()/gather(); still all-warm."""
        assert main(["serve", "--model", "vgg9", "--width", "0.03125",
                     "--requests", "3", "--images", "1", "--seed", "4",
                     "--concurrency", "2"]) == 0
        output = capsys.readouterr().out
        assert "0 cold lease events and 0 CAM reprogram events after deploy" in output
        assert "(2 overlapped clients)" in output
        assert "fill / steady state / drain" in output

    def test_serve_command_json_report(self, capsys):
        """--json emits the BENCH_*.json schema instead of the tables."""
        import json

        assert main(["serve", "--model", "vgg9", "--width", "0.03125",
                     "--requests", "2", "--images", "1", "--seed", "4",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "serve_vgg9"
        metrics = payload["metrics"]
        assert metrics["requests"] == 2
        assert metrics["cold_leases_after_deploy"] == 0
        assert metrics["cam_reprograms_after_deploy"] == 0
        assert metrics["crosscheck_consistent"] is True
        assert metrics["pipeline_stages"] >= 2
        assert metrics["pipeline_speedup"] >= 1.0
        assert "amortized_energy_uj" in metrics

    def test_cluster_command_json_report(self, capsys):
        """repro cluster --json: every replica warm, no dropped requests."""
        import json

        assert main(["cluster", "--model", "vgg9", "--width", "0.0625",
                     "--replicas", "2", "--qps", "4", "--duration", "1",
                     "--seed", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "cluster_vgg9"
        metrics = payload["metrics"]
        assert metrics["replicas"] == 2
        assert metrics["replicas_live"] == 2
        assert metrics["cold_leases_after_deploy"] == 0
        assert metrics["failed"] == 0
        assert metrics["completed"] + metrics["rejected"] == metrics["requests"]
        assert len(metrics["requests_per_replica"]) == 2

    def test_cluster_command_human_tables(self, capsys):
        assert main(["cluster", "--model", "vgg9", "--width", "0.0625",
                     "--replicas", "2", "--qps", "4", "--duration", "1",
                     "--seed", "4"]) == 0
        output = capsys.readouterr().out
        assert "open-loop Poisson load" in output
        assert "per-replica residency" in output
        assert "2/2 live" in output

    def test_infer_command_pipelined(self, capsys):
        """--pipeline serves the batch through the dependency-driven engine
        and still passes both crosschecks (byte-identical logits)."""
        assert main(["infer", "--model", "vgg9", "--width", "0.03125",
                     "--images", "2", "--seed", "3", "--pipeline"]) == 0
        output = capsys.readouterr().out
        assert "logits byte-identical to the NumPy reference" in output
        assert "cost model consistent" in output

    def test_infer_command_exits_nonzero_on_mismatch(self, monkeypatch):
        """The crosscheck is a real gate: a logits mismatch fails the run."""
        import dataclasses

        import repro.eval.equivalence as equivalence_module

        real = equivalence_module.check_inference_equivalence

        def corrupted(*args, **kwargs):
            verdict = real(*args, **kwargs)
            return dataclasses.replace(verdict, logits_identical=False)

        monkeypatch.setattr(
            equivalence_module, "check_inference_equivalence", corrupted
        )
        with pytest.raises(SystemExit):
            main(["infer", "--model", "vgg9", "--width", "0.03125"])


def _apbench_phase_column(output: str):
    """Extract the (backend, phases) pairs from an apbench report."""
    rows = []
    for line in output.splitlines():
        cells = line.split()
        if cells and cells[0] in ("reference", "vectorized"):
            rows.append((cells[0], cells[4]))
    return rows


class TestApbenchSeedReproducibility:
    """`apbench --seed` threads end-to-end into the fuzz program generator:
    the same seed must reproduce the exact workload (and therefore the exact
    event counts) run-to-run; a different seed must change the workload."""

    def _phases(self, capsys, seed):
        assert main(["apbench", "--backend", "vectorized", "--rows", "32",
                     "--instructions", "16", "--repeats", "1",
                     "--seed", str(seed)]) == 0
        return _apbench_phase_column(capsys.readouterr().out)

    def test_same_seed_is_reproducible(self, capsys):
        assert self._phases(capsys, 5) == self._phases(capsys, 5)

    def test_different_seed_changes_workload(self, capsys):
        assert self._phases(capsys, 5) != self._phases(capsys, 6)
