"""Tests for layer modules."""

import numpy as np
import pytest

from repro.errors import ModelDefinitionError
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    TernaryConv2d,
    TernaryLinear,
)
from repro.nn.model import BasicBlock, Sequential


class TestConvLayers:
    def test_conv_shapes(self, rng):
        layer = Conv2d(3, 8, kernel_size=3, stride=1, padding=1, rng=rng)
        x = rng.normal(size=(2, 3, 8, 8))
        assert layer(x).shape == (2, 8, 8, 8)
        assert layer.output_shape((3, 8, 8)) == (8, 8, 8)

    def test_conv_channel_check(self):
        layer = Conv2d(3, 8, 3)
        with pytest.raises(ModelDefinitionError):
            layer.output_shape((4, 8, 8))

    def test_invalid_geometry(self):
        with pytest.raises(ModelDefinitionError):
            Conv2d(0, 8, 3)

    def test_ternary_conv_weights_are_ternary(self, rng):
        layer = TernaryConv2d(3, 8, 3, sparsity=0.7, rng=rng)
        assert set(np.unique(layer.ternary_weights)).issubset({-1, 0, 1})
        assert layer.sparsity == pytest.approx(0.7, abs=0.02)

    def test_ternary_conv_forward_uses_scale(self, rng):
        layer = TernaryConv2d(2, 4, 3, sparsity=0.0, scale=2.0, rng=rng)
        x = np.ones((1, 2, 5, 5))
        doubled = layer(x)
        layer.scale = 1.0
        assert np.allclose(doubled, 2.0 * layer(x))

    def test_set_ternary_weights(self, rng):
        layer = TernaryConv2d(2, 4, 3, rng=rng)
        new = np.zeros_like(layer.ternary_weights)
        layer.set_ternary_weights(new, scale=0.5)
        assert layer.sparsity == 1.0
        with pytest.raises(ModelDefinitionError):
            layer.set_ternary_weights(np.zeros((1, 1, 1, 1)))


class TestLinearLayers:
    def test_linear_forward(self, rng):
        layer = Linear(8, 4, rng=rng)
        x = rng.normal(size=(3, 8))
        assert layer(x).shape == (3, 4)
        assert layer.output_shape((8,)) == (4,)

    def test_linear_shape_check(self):
        layer = Linear(8, 4)
        with pytest.raises(ModelDefinitionError):
            layer.output_shape((9,))

    def test_ternary_linear(self, rng):
        layer = TernaryLinear(16, 4, sparsity=0.5, rng=rng)
        assert set(np.unique(layer.ternary_weights)).issubset({-1, 0, 1})
        assert layer.sparsity == pytest.approx(0.5, abs=0.05)


class TestSimpleLayers:
    def test_relu(self):
        assert np.all(ReLU()(np.array([-1.0, 1.0])) == np.array([0.0, 1.0]))

    def test_pooling_shapes(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        assert MaxPool2d(2)(x).shape == (1, 2, 4, 4)
        assert AvgPool2d(2)(x).shape == (1, 2, 4, 4)
        assert MaxPool2d(2).output_shape((2, 8, 8)) == (2, 4, 4)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 5, 4, 4))
        layer = GlobalAvgPool2d()
        assert layer(x).shape == (2, 5)
        assert layer.output_shape((5, 4, 4)) == (5,)

    def test_flatten(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        layer = Flatten()
        assert layer(x).shape == (2, 48)
        assert layer.output_shape((3, 4, 4)) == (48,)

    def test_batchnorm_shapes(self, rng):
        layer = BatchNorm2d(3)
        x = rng.normal(size=(2, 3, 4, 4))
        assert layer(x).shape == x.shape
        assert layer.output_shape((3, 4, 4)) == (3, 4, 4)


class TestSequential:
    def test_forward_and_shape(self, rng):
        model = Sequential(
            [
                TernaryConv2d(3, 8, 3, padding=1, rng=rng),
                BatchNorm2d(8),
                ReLU(),
                MaxPool2d(2),
                Flatten(),
                TernaryLinear(8 * 4 * 4, 10, rng=rng),
            ],
            name="tiny",
        )
        x = rng.normal(size=(2, 3, 8, 8))
        assert model(x).shape == (2, 10)
        assert model.output_shape((3, 8, 8)) == (10,)

    def test_compute_layers_enumeration(self, rng):
        model = Sequential(
            [
                TernaryConv2d(3, 8, 3, padding=1, rng=rng),
                ReLU(),
                Flatten(),
                TernaryLinear(8 * 4 * 4, 2, rng=rng),
            ],
            name="t",
        )
        layers = list(model.compute_layers((3, 4, 4)))
        assert len(layers) == 2
        assert layers[0][2] == (3, 4, 4)
        assert layers[1][2] == (8 * 4 * 4,)

    def test_empty_sequential_rejected(self):
        with pytest.raises(ModelDefinitionError):
            Sequential([])

    def test_len_and_iter(self, rng):
        model = Sequential([ReLU(), ReLU()])
        assert len(model) == 2
        assert all(isinstance(layer, ReLU) for layer in model)


class TestBasicBlock:
    def test_identity_block_shapes(self, rng):
        block = BasicBlock(8, 8, stride=1, rng=rng)
        x = rng.normal(size=(1, 8, 8, 8))
        assert block(x).shape == (1, 8, 8, 8)
        assert block.downsample_conv is None

    def test_downsample_block(self, rng):
        block = BasicBlock(8, 16, stride=2, rng=rng)
        x = rng.normal(size=(1, 8, 8, 8))
        assert block(x).shape == (1, 16, 4, 4)
        assert block.downsample_conv is not None

    def test_compute_layers_counts_convs(self, rng):
        block = BasicBlock(8, 16, stride=2, rng=rng)
        layers = list(block.compute_layers((8, 8, 8), prefix="b"))
        names = [name for name, _, _ in layers]
        assert names == ["b.conv1", "b.conv2", "b.downsample"]

    def test_output_nonnegative_after_relu(self, rng):
        block = BasicBlock(4, 4, rng=rng)
        out = block(rng.normal(size=(2, 4, 6, 6)))
        assert out.min() >= 0.0
