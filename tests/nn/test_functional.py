"""Tests for the NumPy reference operators."""

import numpy as np
import pytest

from repro.errors import ModelDefinitionError
from repro.nn import functional as F


class TestConv2d:
    def test_identity_kernel(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = F.conv2d(x, w, stride=1, padding=1)
        assert np.allclose(out, x)

    def test_bias_added(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = np.zeros((3, 2, 1, 1))
        bias = np.array([1.0, 2.0, 3.0])
        out = F.conv2d(x, w, bias=bias)
        assert np.allclose(out[0, 0], 1.0)
        assert np.allclose(out[0, 2], 3.0)

    def test_stride_and_padding_shapes(self, rng):
        x = rng.normal(size=(2, 3, 32, 32))
        w = rng.normal(size=(8, 3, 3, 3))
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 8, 16, 16)

    def test_channel_mismatch(self, rng):
        with pytest.raises(ModelDefinitionError):
            F.conv2d(rng.normal(size=(1, 2, 4, 4)), rng.normal(size=(1, 3, 3, 3)))

    def test_integer_inputs_stay_exact(self):
        x = np.arange(2 * 16, dtype=np.int64).reshape(1, 2, 4, 4)
        w = np.ones((1, 2, 2, 2), dtype=np.int64)
        out = F.conv2d(x, w)
        assert out.dtype.kind in "i"
        assert out[0, 0, 0, 0] == x[0, :, 0:2, 0:2].sum()


class TestLinear:
    def test_matches_matmul(self, rng):
        x = rng.normal(size=(4, 8))
        w = rng.normal(size=(3, 8))
        b = rng.normal(size=3)
        assert np.allclose(F.linear(x, w, b), x @ w.T + b)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ModelDefinitionError):
            F.linear(rng.normal(size=(4, 8)), rng.normal(size=(3, 9)))


class TestActivationsAndPooling:
    def test_relu(self):
        assert np.array_equal(F.relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_max_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.max_pool2d(x, 2)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == 5.0
        assert out[0, 0, 1, 1] == 15.0

    def test_avg_pool(self):
        x = np.ones((1, 2, 4, 4))
        out = F.avg_pool2d(x, 2)
        assert np.allclose(out, 1.0)

    def test_max_pool_with_stride(self):
        x = np.arange(25, dtype=float).reshape(1, 1, 5, 5)
        out = F.max_pool2d(x, 3, stride=2)
        assert out.shape == (1, 1, 2, 2)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        assert np.allclose(out, x.mean(axis=(2, 3)))


class TestBatchNorm:
    def test_identity_parameters(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = F.batch_norm2d(x, np.zeros(3), np.ones(3), np.ones(3), np.zeros(3))
        assert np.allclose(out, x, atol=1e-4)

    def test_normalises_statistics(self, rng):
        x = rng.normal(loc=5.0, scale=2.0, size=(8, 1, 16, 16))
        mean = np.array([5.0])
        var = np.array([4.0])
        out = F.batch_norm2d(x, mean, var, np.ones(1), np.zeros(1))
        assert abs(out.mean()) < 0.1
        assert abs(out.std() - 1.0) < 0.1


class TestLossAndMetrics:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = F.softmax(rng.normal(size=(5, 10)), axis=1)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        labels = np.array([0, 1])
        assert F.cross_entropy(logits, labels) < 1e-4

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        labels = np.array([0, 1, 1])
        assert F.accuracy(logits, labels) == pytest.approx(2 / 3)
