"""Tests for the model zoo (VGG-9, VGG-11, ResNet-18) and the registry."""

import numpy as np
import pytest

from repro.errors import ModelDefinitionError
from repro.nn.models.registry import available_models, build_model, model_record
from repro.nn.models.resnet import build_resnet18
from repro.nn.models.vgg import build_vgg9, build_vgg11
from repro.nn.stats import model_layer_specs


class TestRegistry:
    def test_available_models(self):
        assert set(available_models()) == {"resnet18", "vgg9", "vgg11"}

    def test_unknown_model_rejected(self):
        with pytest.raises(ModelDefinitionError):
            model_record("lenet")

    def test_build_model_shapes(self):
        model, shape = build_model("vgg9", rng=0)
        assert shape == (3, 32, 32)
        model, shape = build_model("resnet18", rng=0)
        assert shape == (3, 224, 224)

    def test_default_sparsities(self):
        assert model_record("resnet18").default_sparsity == pytest.approx(0.8)
        assert model_record("vgg9").default_sparsity == pytest.approx(0.85)


class TestVGG:
    def test_vgg9_weight_layer_count(self):
        model = build_vgg9(rng=0)
        specs = model_layer_specs(model, (3, 32, 32))
        conv_specs = [s for s in specs if s.patch_size > 1]
        assert len(conv_specs) == 6
        assert len(specs) == 7

    def test_vgg11_weight_layer_count(self):
        model = build_vgg11(rng=0)
        specs = model_layer_specs(model, (3, 32, 32))
        conv_specs = [s for s in specs if s.patch_size > 1]
        assert len(conv_specs) == 8
        assert len(specs) == 11

    def test_vgg9_total_weights_match_paper_scale(self):
        """~4.7M ternary weights -> ~700K non-zeros at 0.85 sparsity (paper: 696K)."""
        model = build_vgg9(sparsity=0.85, rng=0)
        specs = model_layer_specs(model, (3, 32, 32))
        total = sum(s.weights.size for s in specs)
        nonzero = sum(s.nonzero_weights for s in specs)
        assert 4.0e6 < total < 5.5e6
        assert 0.6e6 < nonzero < 0.8e6

    def test_vgg_forward_pass(self, rng):
        model = build_vgg9(rng=0)
        x = rng.normal(size=(1, 3, 32, 32))
        assert model(x).shape == (1, 10)

    def test_vgg11_forward_pass(self, rng):
        model = build_vgg11(rng=0)
        x = rng.normal(size=(1, 3, 32, 32))
        assert model(x).shape == (1, 10)

    def test_sparsity_respected(self):
        model = build_vgg9(sparsity=0.9, rng=0)
        specs = model_layer_specs(model, (3, 32, 32))
        realised = sum(s.nonzero_weights for s in specs) / sum(s.weights.size for s in specs)
        assert realised == pytest.approx(0.1, abs=0.01)


class TestResNet18:
    def test_conv_layer_count_is_20(self):
        """Fig. 4 of the paper shows 20 convolutional layers."""
        model = build_resnet18(rng=0)
        specs = model_layer_specs(model, (3, 224, 224))
        conv_specs = [s for s in specs if s.input_height > 1]
        assert len(conv_specs) == 20
        assert len(specs) == 21  # plus the classifier

    def test_total_weights_about_11_million(self):
        model = build_resnet18(rng=0)
        specs = model_layer_specs(model, (3, 224, 224))
        total = sum(s.weights.size for s in specs)
        assert 11.0e6 < total < 12.5e6

    def test_first_layer_geometry(self):
        model = build_resnet18(rng=0)
        specs = model_layer_specs(model, (3, 224, 224))
        stem = specs[0]
        assert stem.kernel_height == 7
        assert stem.stride == 2
        assert stem.output_positions == 112 * 112

    def test_stage_channels(self):
        model = build_resnet18(rng=0)
        specs = model_layer_specs(model, (3, 224, 224))
        out_channels = {spec.out_channels for spec in specs[:-1]}
        assert {64, 128, 256, 512}.issubset(out_channels)

    @pytest.mark.slow
    def test_forward_pass_small_input(self, rng):
        """Functional forward on a reduced-resolution input (keeps runtime low)."""
        model = build_resnet18(num_classes=10, rng=0)
        x = rng.normal(size=(1, 3, 64, 64))
        assert model(x).shape == (1, 10)
