"""Tests for ternary weight generation and projection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QuantizationError
from repro.nn.ternary import (
    sparsity_of,
    synthetic_ternary_weights,
    ternarize_weights,
    ternary_matrix_from_rows,
)


class TestSparsity:
    def test_sparsity_of(self):
        assert sparsity_of(np.array([0, 0, 1, -1])) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(QuantizationError):
            sparsity_of(np.array([]))


class TestTernarize:
    def test_values_are_ternary(self, rng):
        weights = rng.normal(size=(64, 32))
        ternary, scale = ternarize_weights(weights, sparsity=0.7)
        assert set(np.unique(ternary)).issubset({-1, 0, 1})
        assert scale > 0

    def test_target_sparsity_respected(self, rng):
        weights = rng.normal(size=(100, 100))
        ternary, _ = ternarize_weights(weights, sparsity=0.8)
        assert sparsity_of(ternary) == pytest.approx(0.8, abs=0.02)

    def test_signs_preserved(self):
        weights = np.array([3.0, -2.0, 0.1, -0.1])
        ternary, _ = ternarize_weights(weights, sparsity=0.5)
        assert ternary[0] == 1
        assert ternary[1] == -1

    def test_zero_sparsity_keeps_all(self, rng):
        weights = rng.normal(size=50) + 10  # all far from zero
        ternary, _ = ternarize_weights(weights, sparsity=0.0)
        assert sparsity_of(ternary) == 0.0

    def test_full_sparsity_zeroes_all(self, rng):
        ternary, scale = ternarize_weights(rng.normal(size=50), sparsity=1.0)
        assert sparsity_of(ternary) == 1.0
        assert scale == 0.0

    def test_empty_rejected(self):
        with pytest.raises(QuantizationError):
            ternarize_weights(np.array([]), 0.5)


class TestSyntheticWeights:
    def test_exact_sparsity(self):
        weights = synthetic_ternary_weights((100, 10), sparsity=0.85, rng=0)
        assert sparsity_of(weights) == pytest.approx(0.85, abs=0.001)

    def test_deterministic_for_same_seed(self):
        a = synthetic_ternary_weights((8, 8), 0.5, rng=3)
        b = synthetic_ternary_weights((8, 8), 0.5, rng=3)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = synthetic_ternary_weights((16, 16), 0.5, rng=1)
        b = synthetic_ternary_weights((16, 16), 0.5, rng=2)
        assert not np.array_equal(a, b)

    def test_shape_preserved(self):
        weights = synthetic_ternary_weights((4, 3, 3, 3), 0.8, rng=0)
        assert weights.shape == (4, 3, 3, 3)
        assert weights.dtype == np.int8

    def test_both_signs_present(self):
        weights = synthetic_ternary_weights((64, 64), 0.5, rng=0)
        assert (weights == 1).any()
        assert (weights == -1).any()

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_sparsity_property(self, sparsity):
        weights = synthetic_ternary_weights((40, 25), sparsity, rng=7)
        assert sparsity_of(weights) == pytest.approx(sparsity, abs=0.002)


class TestTernaryMatrixHelper:
    def test_accepts_valid(self):
        matrix = ternary_matrix_from_rows([[1, 0], [-1, 1]])
        assert matrix.dtype == np.int8

    def test_rejects_invalid(self):
        with pytest.raises(QuantizationError):
            ternary_matrix_from_rows([[2, 0]])
