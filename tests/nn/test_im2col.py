"""Tests for the im2col transformation."""

import numpy as np
import pytest

from repro.errors import ModelDefinitionError
from repro.nn.im2col import conv_output_size, im2col, im2col_matrix, pad_input


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(8, 3, 1, 1) == 8
        assert conv_output_size(8, 3, 1, 0) == 6
        assert conv_output_size(32, 3, 2, 1) == 16
        assert conv_output_size(224, 7, 2, 3) == 112

    def test_invalid_geometry(self):
        with pytest.raises(ModelDefinitionError):
            conv_output_size(0, 3)
        with pytest.raises(ModelDefinitionError):
            conv_output_size(4, 3, 1, -1)
        with pytest.raises(ModelDefinitionError):
            conv_output_size(2, 5, 1, 0)


class TestPadInput:
    def test_zero_padding_is_identity(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        assert pad_input(x, 0) is x

    def test_padding_adds_border(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        padded = pad_input(x, 2)
        assert padded.shape == (1, 2, 8, 8)
        assert np.all(padded[:, :, :2, :] == 0)


class TestIm2col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        columns = im2col(x, (3, 3), stride=1, padding=1)
        assert columns.shape == (2, 3, 9, 64)

    def test_values_match_manual_patch(self, rng):
        x = rng.integers(0, 10, size=(1, 1, 5, 5)).astype(float)
        columns = im2col(x, (3, 3), stride=1, padding=0)
        # Output position (1, 1) corresponds to the patch centred at (2, 2).
        position = 1 * 3 + 1
        patch = x[0, 0, 1:4, 1:4].reshape(-1)
        assert np.allclose(columns[0, 0, :, position], patch)

    def test_stride(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        columns = im2col(x, (3, 3), stride=2, padding=1)
        assert columns.shape == (1, 2, 9, 16)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ModelDefinitionError):
            im2col(np.zeros((3, 8, 8)), (3, 3))


class TestIm2colEdgeCases:
    """Geometries the end-to-end inference dataflow relies on."""

    def _gemm_reference(self, x, kernel, stride, padding):
        """Naive sliding-window gather to validate the vectorized layout."""
        kernel_h, kernel_w = kernel
        batch, channels, _, _ = x.shape
        out_h = conv_output_size(x.shape[2], kernel_h, stride, padding)
        out_w = conv_output_size(x.shape[3], kernel_w, stride, padding)
        padded = pad_input(x, padding)
        expected = np.zeros((batch, channels, kernel_h * kernel_w, out_h * out_w))
        for i in range(out_h):
            for j in range(out_w):
                patch = padded[
                    :, :, i * stride : i * stride + kernel_h, j * stride : j * stride + kernel_w
                ]
                expected[:, :, :, i * out_w + j] = patch.reshape(batch, channels, -1)
        return expected

    def test_no_padding(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        columns = im2col(x, (3, 3), stride=1, padding=0)
        assert columns.shape == (1, 2, 9, 16)
        assert np.allclose(columns, self._gemm_reference(x, (3, 3), 1, 0))

    def test_stride_larger_than_kernel(self, rng):
        """Stride 3 with a 2x2 kernel skips input pixels entirely."""
        x = rng.normal(size=(1, 1, 8, 8))
        columns = im2col(x, (2, 2), stride=3, padding=0)
        assert columns.shape == (1, 1, 4, 9)
        assert np.allclose(columns, self._gemm_reference(x, (2, 2), 3, 0))

    def test_non_square_input(self, rng):
        x = rng.normal(size=(2, 3, 5, 9))
        columns = im2col(x, (3, 3), stride=1, padding=1)
        assert columns.shape == (2, 3, 9, 5 * 9)
        assert np.allclose(columns, self._gemm_reference(x, (3, 3), 1, 1))

    def test_non_square_kernel(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        columns = im2col(x, (1, 3), stride=1, padding=0)
        assert columns.shape == (1, 2, 3, 6 * 4)
        assert np.allclose(columns, self._gemm_reference(x, (1, 3), 1, 0))

    def test_1x1_kernel_is_a_flatten(self, rng):
        """A pointwise convolution's columns are the input pixels themselves."""
        x = rng.normal(size=(2, 4, 5, 5))
        columns = im2col(x, (1, 1), stride=1, padding=0)
        assert columns.shape == (2, 4, 1, 25)
        assert np.allclose(columns[:, :, 0, :], x.reshape(2, 4, -1))

    def test_1x1_kernel_with_stride(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        columns = im2col(x, (1, 1), stride=2, padding=0)
        assert columns.shape == (1, 2, 1, 9)
        assert np.allclose(columns, self._gemm_reference(x, (1, 1), 2, 0))

    def test_padding_only_output(self, rng):
        """Kernel as large as the padded input: a single output position."""
        x = rng.normal(size=(1, 1, 3, 3))
        columns = im2col(x, (5, 5), stride=1, padding=1)
        assert columns.shape == (1, 1, 25, 1)
        assert np.allclose(columns, self._gemm_reference(x, (5, 5), 1, 1))

    def test_matrix_layout(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        matrix = im2col_matrix(x, (3, 3), padding=1)
        assert matrix.shape == (1, 2 * 9, 36)

    def test_gemm_equals_direct_convolution(self, rng):
        """im2col + GEMM must equal the naive convolution definition."""
        from repro.nn.functional import conv2d

        x = rng.normal(size=(1, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        out = conv2d(x, w, stride=1, padding=1)
        # Naive reference.
        padded = pad_input(x, 1)
        reference = np.zeros_like(out)
        for o in range(4):
            for i in range(6):
                for j in range(6):
                    patch = padded[0, :, i : i + 3, j : j + 3]
                    reference[0, o, i, j] = np.sum(patch * w[o])
        assert np.allclose(out, reference)
