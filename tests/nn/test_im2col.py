"""Tests for the im2col transformation."""

import numpy as np
import pytest

from repro.errors import ModelDefinitionError
from repro.nn.im2col import conv_output_size, im2col, im2col_matrix, pad_input


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(8, 3, 1, 1) == 8
        assert conv_output_size(8, 3, 1, 0) == 6
        assert conv_output_size(32, 3, 2, 1) == 16
        assert conv_output_size(224, 7, 2, 3) == 112

    def test_invalid_geometry(self):
        with pytest.raises(ModelDefinitionError):
            conv_output_size(0, 3)
        with pytest.raises(ModelDefinitionError):
            conv_output_size(4, 3, 1, -1)
        with pytest.raises(ModelDefinitionError):
            conv_output_size(2, 5, 1, 0)


class TestPadInput:
    def test_zero_padding_is_identity(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        assert pad_input(x, 0) is x

    def test_padding_adds_border(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        padded = pad_input(x, 2)
        assert padded.shape == (1, 2, 8, 8)
        assert np.all(padded[:, :, :2, :] == 0)


class TestIm2col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        columns = im2col(x, (3, 3), stride=1, padding=1)
        assert columns.shape == (2, 3, 9, 64)

    def test_values_match_manual_patch(self, rng):
        x = rng.integers(0, 10, size=(1, 1, 5, 5)).astype(float)
        columns = im2col(x, (3, 3), stride=1, padding=0)
        # Output position (1, 1) corresponds to the patch centred at (2, 2).
        position = 1 * 3 + 1
        patch = x[0, 0, 1:4, 1:4].reshape(-1)
        assert np.allclose(columns[0, 0, :, position], patch)

    def test_stride(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        columns = im2col(x, (3, 3), stride=2, padding=1)
        assert columns.shape == (1, 2, 9, 16)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ModelDefinitionError):
            im2col(np.zeros((3, 8, 8)), (3, 3))

    def test_matrix_layout(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        matrix = im2col_matrix(x, (3, 3), padding=1)
        assert matrix.shape == (1, 2 * 9, 36)

    def test_gemm_equals_direct_convolution(self, rng):
        """im2col + GEMM must equal the naive convolution definition."""
        from repro.nn.functional import conv2d

        x = rng.normal(size=(1, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        out = conv2d(x, w, stride=1, padding=1)
        # Naive reference.
        padded = pad_input(x, 1)
        reference = np.zeros_like(out)
        for o in range(4):
            for i in range(6):
                for j in range(6):
                    patch = padded[0, :, i : i + 3, j : j + 3]
                    reference[0, o, i, j] = np.sum(patch * w[o])
        assert np.allclose(out, reference)
