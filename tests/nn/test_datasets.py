"""Tests for synthetic datasets."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.datasets import (
    make_cluster_classification,
    make_patch_classification,
    synthetic_images,
)


class TestSyntheticImages:
    def test_cifar_shape(self):
        assert synthetic_images("cifar10", batch_size=2).shape == (2, 3, 32, 32)

    def test_imagenet_shape(self):
        assert synthetic_images("imagenet").shape == (1, 3, 224, 224)

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            synthetic_images("mnist")

    def test_invalid_batch(self):
        with pytest.raises(ConfigurationError):
            synthetic_images("cifar10", batch_size=0)

    def test_deterministic(self):
        a = synthetic_images("cifar10", rng=5)
        b = synthetic_images("cifar10", rng=5)
        assert np.array_equal(a, b)


class TestClusterClassification:
    def test_shapes_and_labels(self):
        data = make_cluster_classification(num_classes=4, features=16, train_per_class=10, test_per_class=5, rng=0)
        assert data.train_x.shape == (40, 16)
        assert data.test_x.shape == (20, 16)
        assert data.num_classes == 4
        assert data.num_features == 16

    def test_labels_cover_all_classes(self):
        data = make_cluster_classification(num_classes=5, rng=0)
        assert set(np.unique(data.train_y)) == set(range(5))

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            make_cluster_classification(num_classes=1)
        with pytest.raises(ConfigurationError):
            make_cluster_classification(features=1)

    def test_task_is_learnable_by_nearest_prototype(self):
        """Low noise clusters should be nearly separable (sanity of the task)."""
        data = make_cluster_classification(num_classes=5, noise=0.2, rng=0)
        prototypes = np.stack(
            [data.train_x[data.train_y == label].mean(axis=0) for label in range(5)]
        )
        distances = ((data.test_x[:, None, :] - prototypes[None]) ** 2).sum(axis=2)
        accuracy = (distances.argmin(axis=1) == data.test_y).mean()
        assert accuracy > 0.95


class TestPatchClassification:
    def test_image_shaped(self):
        data = make_patch_classification(num_classes=3, image_size=8, channels=2, rng=0)
        assert data.train_x.shape[1:] == (2, 8, 8)
        assert data.num_features == 2 * 8 * 8
