"""Tests for the small QAT training loop."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.datasets import make_cluster_classification
from repro.nn.training import QuantMLP, TrainingConfig, train_mlp


@pytest.fixture(scope="module")
def dataset():
    return make_cluster_classification(
        num_classes=5, features=24, train_per_class=40, test_per_class=20, noise=0.5, rng=11
    )


class TestTrainingConfig:
    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            TrainingConfig(epochs=0)
        with pytest.raises(ConfigurationError):
            TrainingConfig(learning_rate=0)


class TestQuantMLP:
    def test_forward_shapes(self, dataset):
        model = QuantMLP(dataset.num_features, dataset.num_classes, TrainingConfig(epochs=1))
        cache = model.forward(dataset.train_x[:8])
        assert cache["logits"].shape == (8, dataset.num_classes)

    def test_backward_gradient_shapes(self, dataset):
        config = TrainingConfig(epochs=1, hidden_units=16)
        model = QuantMLP(dataset.num_features, dataset.num_classes, config)
        cache = model.forward(dataset.train_x[:8])
        grads = model.backward(cache, dataset.train_y[:8])
        assert grads["w1"].shape == model.w1.shape
        assert grads["w2"].shape == model.w2.shape

    def test_training_reduces_loss(self, dataset):
        config = TrainingConfig(epochs=8, hidden_units=32, seed=0)
        _, result = train_mlp(dataset, config)
        assert result.losses[-1] < result.losses[0]

    def test_trained_model_beats_chance(self, dataset):
        config = TrainingConfig(epochs=12, hidden_units=32, seed=0)
        _, result = train_mlp(dataset, config)
        chance = 1.0 / dataset.num_classes
        assert result.test_accuracy > 2 * chance

    def test_ternary_with_4bit_close_to_fp(self, dataset):
        """The core accuracy claim on the proxy task: 4-bit ternary ~ FP."""
        fp_config = TrainingConfig(epochs=12, ternary_weights=False, activation_bits=None, seed=0)
        q_config = TrainingConfig(epochs=12, ternary_weights=True, activation_bits=4, seed=0)
        _, fp_result = train_mlp(dataset, fp_config)
        _, q_result = train_mlp(dataset, q_config)
        assert q_result.test_accuracy >= fp_result.test_accuracy - 0.12

    def test_matmul_perturbation_changes_predictions(self, dataset):
        config = TrainingConfig(epochs=6, seed=0)
        model, _ = train_mlp(dataset, config)
        clean = model.evaluate(dataset.test_x, dataset.test_y)
        noisy = model.evaluate(
            dataset.test_x,
            dataset.test_y,
            matmul_perturbation=lambda m: m + np.random.default_rng(0).normal(0, 5 * np.std(m), m.shape),
        )
        assert noisy <= clean
