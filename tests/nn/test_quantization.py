"""Tests for the LSQ-style activation quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QuantizationError
from repro.nn.quantization import ActivationQuantizer, QuantizationConfig, quantize_to_int


class TestQuantizationConfig:
    def test_unsigned_range(self):
        config = QuantizationConfig(bits=4, signed=False)
        assert (config.qmin, config.qmax) == (0, 15)
        assert config.num_levels == 16

    def test_signed_range(self):
        config = QuantizationConfig(bits=4, signed=True)
        assert (config.qmin, config.qmax) == (-8, 7)

    def test_invalid_bits(self):
        with pytest.raises(Exception):
            QuantizationConfig(bits=0)
        with pytest.raises(QuantizationError):
            QuantizationConfig(bits=32)


class TestActivationQuantizer:
    def test_requires_step(self):
        quantizer = ActivationQuantizer(QuantizationConfig(bits=4))
        with pytest.raises(QuantizationError):
            quantizer.quantize(np.ones(4))

    def test_calibration_sets_step(self, rng):
        quantizer = ActivationQuantizer(QuantizationConfig(bits=4))
        step = quantizer.calibrate(rng.uniform(0, 1, 100))
        assert step > 0
        assert quantizer.step == step

    def test_codes_within_range(self, rng):
        quantizer = ActivationQuantizer(QuantizationConfig(bits=4))
        x = rng.uniform(0, 10, 1000)
        quantizer.calibrate(x)
        codes = quantizer.quantize(x)
        assert codes.min() >= 0
        assert codes.max() <= 15

    def test_dequantize_roundtrip_on_grid(self):
        quantizer = ActivationQuantizer(QuantizationConfig(bits=4), step=0.5)
        values = np.array([0.0, 0.5, 1.0, 7.5])
        codes = quantizer.quantize(values)
        assert np.allclose(quantizer.dequantize(codes), values)

    def test_error_decreases_with_more_bits(self, rng):
        x = rng.uniform(0, 1, 5000)
        error4 = ActivationQuantizer(QuantizationConfig(bits=4))
        error8 = ActivationQuantizer(QuantizationConfig(bits=8))
        error4.calibrate(x)
        error8.calibrate(x)
        assert error8.quantization_error(x) < error4.quantization_error(x)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=8))
    def test_fake_quantize_idempotent(self, bits):
        rng = np.random.default_rng(bits)
        quantizer = ActivationQuantizer(QuantizationConfig(bits=bits))
        x = rng.uniform(0, 1, 256)
        quantizer.calibrate(x)
        once = quantizer.fake_quantize(x)
        twice = quantizer.fake_quantize(once)
        assert np.allclose(once, twice)

    def test_quantize_to_int_helper(self, rng):
        x = rng.uniform(0, 1, 100)
        codes, step = quantize_to_int(x, bits=4)
        assert codes.max() <= 15
        assert step > 0


class TestActivationBitClipping:
    """Codes must never leave the representable range, whatever the input.

    The compiled AP programs size their columns from the activation range, so
    an out-of-range code would silently corrupt the integer arithmetic - the
    clamp here is what the inference dataflow's bit-exactness rests on.
    """

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_unsigned_outliers_clip_to_qmax(self, bits):
        quantizer = ActivationQuantizer(QuantizationConfig(bits=bits), step=1.0)
        codes = quantizer.quantize(np.array([1e9, float(2**bits), -1e9, -0.4]))
        assert codes.max() == (1 << bits) - 1
        assert codes.min() == 0

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_signed_outliers_clip_symmetrically(self, bits):
        config = QuantizationConfig(bits=bits, signed=True)
        quantizer = ActivationQuantizer(config, step=1.0)
        codes = quantizer.quantize(np.array([1e9, -1e9]))
        assert codes[0] == config.qmax == (1 << (bits - 1)) - 1
        assert codes[1] == config.qmin == -(1 << (bits - 1))

    def test_negative_inputs_clip_to_zero_unsigned(self):
        """Post-ReLU (unsigned) quantization floors negative values at 0."""
        quantizer = ActivationQuantizer(QuantizationConfig(bits=4), step=0.5)
        codes = quantizer.quantize(np.array([-5.0, -0.3, 0.0, 0.3]))
        assert np.array_equal(codes, [0, 0, 0, 1])

    def test_tiny_step_still_clips(self):
        """A very small calibrated step cannot push codes past qmax."""
        quantizer = ActivationQuantizer(QuantizationConfig(bits=4), step=1e-8)
        codes = quantizer.quantize(np.array([1.0, 100.0]))
        assert np.all(codes == 15)

    def test_batch_quantizer_clips_per_image(self, rng):
        """The inference-path batch quantizer inherits the clamp."""
        from repro.inference.activations import quantize_batch

        images = np.stack([rng.normal(size=(2, 3, 3)) * scale for scale in (1, 1e6)])
        codes, steps = quantize_batch(images, bits=4)
        assert codes.min() >= 0 and codes.max() <= 15
        assert steps.shape == (2,)
