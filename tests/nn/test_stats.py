"""Tests for layer-spec extraction."""

import numpy as np
import pytest

from repro.errors import ModelDefinitionError
from repro.nn.layers import TernaryConv2d, TernaryLinear
from repro.nn.model import Sequential
from repro.nn.stats import ConvLayerSpec, model_layer_specs, summarize_specs
from repro.nn.ternary import synthetic_ternary_weights


class TestConvLayerSpec:
    def _spec(self, **kwargs):
        defaults = dict(
            name="conv",
            weights=synthetic_ternary_weights((8, 4, 3, 3), 0.5, rng=0),
            input_height=16,
            input_width=16,
            stride=1,
            padding=1,
        )
        defaults.update(kwargs)
        return ConvLayerSpec(**defaults)

    def test_derived_geometry(self):
        spec = self._spec()
        assert spec.out_channels == 8
        assert spec.in_channels == 4
        assert spec.patch_size == 9
        assert spec.output_positions == 256
        assert spec.macs == 8 * 4 * 9 * 256

    def test_strided_output(self):
        spec = self._spec(stride=2)
        assert spec.output_height == 8

    def test_weight_slice_shape(self):
        spec = self._spec()
        weight_slice = spec.weight_slice(2)
        assert weight_slice.shape == (8, 9)
        assert np.array_equal(weight_slice, spec.weights[:, 2].reshape(8, 9))

    def test_weight_slice_bounds(self):
        with pytest.raises(ModelDefinitionError):
            self._spec().weight_slice(4)

    def test_rejects_non_ternary(self):
        weights = np.full((2, 2, 3, 3), 2, dtype=np.int8)
        with pytest.raises(Exception):
            ConvLayerSpec("bad", weights, 8, 8)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ModelDefinitionError):
            ConvLayerSpec("bad", np.zeros((2, 2, 3), dtype=np.int8), 8, 8)

    def test_from_linear(self):
        weights = synthetic_ternary_weights((10, 64), 0.5, rng=0)
        spec = ConvLayerSpec.from_linear("fc", weights)
        assert spec.in_channels == 64
        assert spec.out_channels == 10
        assert spec.patch_size == 1
        assert spec.output_positions == 1

    def test_sparsity_and_nonzeros(self):
        spec = self._spec()
        assert spec.nonzero_weights == np.count_nonzero(spec.weights)
        assert spec.sparsity == pytest.approx(0.5, abs=0.01)


class TestModelLayerSpecs:
    def test_sequential_extraction(self, rng):
        model = Sequential(
            [
                TernaryConv2d(3, 8, 3, padding=1, rng=rng),
                TernaryConv2d(8, 16, 3, padding=1, stride=2, rng=rng),
            ],
            name="m",
        )
        specs = model_layer_specs(model, (3, 16, 16))
        assert len(specs) == 2
        assert specs[0].input_height == 16
        assert specs[1].in_channels == 8
        assert specs[1].input_height == 16
        assert specs[1].output_height == 8

    def test_linear_becomes_1x1(self, rng):
        model = Sequential([TernaryLinear(32, 10, rng=rng)], name="fc")
        specs = model_layer_specs(model, (32,))
        assert specs[0].patch_size == 1

    def test_summaries(self, rng):
        model = Sequential([TernaryConv2d(3, 8, 3, padding=1, rng=rng)], name="m")
        specs = model_layer_specs(model, (3, 8, 8))
        summaries = summarize_specs(specs)
        assert summaries[0].out_channels == 8
        assert summaries[0].kernel == (3, 3)
