"""Scheduler aggregation, accelerator ledgers and the layer crosscheck."""

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.interconnect import TransferScope
from repro.cam.stats import CAMStats
from repro.core.compiler import CompilerConfig, compile_model
from repro.errors import ConfigurationError
from repro.perf.model import crosscheck_execution
from repro.runtime import Scheduler, build_execution_plan, execute_model
from repro.runtime.plan import PlannedLayer, TileProgram, derive_tile_seed


@pytest.fixture
def accelerator(tiny_architecture) -> Accelerator:
    return Accelerator(tiny_architecture)


@pytest.fixture
def plan(small_conv_spec, tiny_architecture, accelerator):
    config = CompilerConfig(activation_bits=4, architecture=tiny_architecture)
    compiled = compile_model([small_conv_spec], config, name="small",
                             emit_programs=True)
    return build_execution_plan(compiled, accelerator=accelerator, base_seed=5)


class TestPlanExecutionShape:
    """PlanExecution mirrors the ModelPerformance surface."""

    def test_model_performance_surface(self, plan, accelerator):
        execution = accelerator.execute_plan(plan)
        assert execution.name == plan.name
        assert execution.energy_uj > 0
        assert execution.latency_ms > 0
        assert execution.energy.total_uj == execution.energy_uj
        assert execution.latency.total_ms == execution.latency_ms
        assert execution.arrays_used == plan.aps_used
        assert 0.0 <= execution.movement_fraction < 1.0
        assert execution.total_ops == sum(
            tile.num_arithmetic_ops for layer in plan.layers for tile in layer.tiles
        )
        layer = execution.layer_by_name(plan.layers[0].name)
        assert layer.stats.search_phases > 0
        with pytest.raises(ConfigurationError):
            execution.layer_by_name("nope")

    def test_layer_aggregation(self, plan, accelerator):
        execution = accelerator.execute_plan(plan)
        layer = execution.layers[0]
        assert layer.tiles_executed == len(plan.layers[0].tiles)
        assert layer.aps_used == plan.layers[0].aps_used
        assert layer.rounds == plan.layers[0].num_rounds
        assert layer.energy_uj > 0
        total = CAMStats()
        for result_layer in execution.layers:
            total = total.merge(result_layer.stats)
        assert execution.total_stats == total


class TestAcceleratorLedgers:
    def test_tile_stats_charged(self, plan, accelerator):
        execution = accelerator.execute_plan(plan)
        ledger = accelerator.tile_stats()
        assert ledger
        assert accelerator.total_stats == execution.total_stats
        accelerator.reset_ledgers()
        assert not accelerator.tile_stats()
        assert accelerator.total_stats == CAMStats()

    def test_adder_tree_movement_charged_for_multi_group_layers(
        self, plan, accelerator
    ):
        # Hand-build a layer with two channel groups on the same row tile so
        # the scheduler must charge one partial-sum merge.
        source = plan.layers[0]
        tile_a = source.tiles[0]
        tile_b = TileProgram(
            address=(0, 1, 0),  # different tile of the same bank
            layer_index=0,
            layer_name=source.name,
            row_tile=tile_a.row_tile,
            channel_group=1,
            round_index=0,
            channel_indices=tile_a.channel_indices,
            programs=tile_a.programs,
            rows=tile_a.rows,
            input_seed=derive_tile_seed(5, 0, tile_a.row_tile, 1),
            activation_bits=tile_a.activation_bits,
        )
        synthetic = plan.__class__(
            name="synthetic",
            architecture=plan.architecture,
            allocation=plan.allocation,
            layers=[
                PlannedLayer(
                    name=source.name,
                    layer_index=0,
                    allocation=source.allocation,
                    tiles=[tile_a, tile_b],
                    out_channels=source.out_channels,
                    accumulator_width=source.accumulator_width,
                    output_positions=source.output_positions,
                )
            ],
            base_seed=5,
        )
        execution = accelerator.execute_plan(synthetic)
        ledger = accelerator.movement_ledger()
        assert TransferScope.INTRA_BANK in ledger
        expected_bits = float(
            source.out_channels * tile_a.rows * source.accumulator_width
        )
        assert ledger[TransferScope.INTRA_BANK].bits == expected_bits
        assert execution.energy.movement_fj > 0
        assert execution.movement_fraction > 0

    def test_no_movement_for_groups_serialized_on_one_ap(self, plan, accelerator):
        # Sequential rounds put later channel groups on the SAME AP; their
        # partial sums accumulate in place, so no interconnect traffic.
        source = plan.layers[0]
        tile_a = source.tiles[0]
        tile_b = TileProgram(
            address=tile_a.address,  # same AP: a later sequential round
            layer_index=0,
            layer_name=source.name,
            row_tile=tile_a.row_tile,
            channel_group=1,
            round_index=1,
            channel_indices=tile_a.channel_indices,
            programs=tile_a.programs,
            rows=tile_a.rows,
            input_seed=derive_tile_seed(5, 0, tile_a.row_tile, 1),
            activation_bits=tile_a.activation_bits,
        )
        synthetic = plan.__class__(
            name="serialized",
            architecture=plan.architecture,
            allocation=plan.allocation,
            layers=[
                PlannedLayer(
                    name=source.name,
                    layer_index=0,
                    allocation=source.allocation,
                    tiles=[tile_a, tile_b],
                    out_channels=source.out_channels,
                    accumulator_width=source.accumulator_width,
                    output_positions=source.output_positions,
                )
            ],
            base_seed=5,
        )
        execution = accelerator.execute_plan(synthetic)
        assert not accelerator.movement_ledger()
        assert execution.energy.movement_fj == 0
        assert execution.movement_fraction == 0


class TestSchedulerBackendSelection:
    def test_backend_defaults_to_accelerator_backend(self, tiny_architecture):
        accelerator = Accelerator(tiny_architecture, backend="reference")
        scheduler = Scheduler(accelerator)
        assert scheduler.backend == "reference"

    def test_backend_override(self, accelerator):
        scheduler = Scheduler(accelerator, backend="reference")
        assert scheduler.backend == "reference"


class TestCrosscheckExecution:
    def test_layer_granularity_crosscheck(self, plan, accelerator):
        execution = accelerator.execute_plan(plan)
        check = crosscheck_execution(plan, execution)
        assert check.consistent, check.describe()
        for layer in check.layers:
            assert layer.search_phases_exact
            assert layer.write_phases_bounded
            assert layer.measured_energy_fj > 0
        assert "consistent" in check.describe()

    def test_crosscheck_detects_divergence(self, plan, accelerator):
        execution = accelerator.execute_plan(plan)
        check = crosscheck_execution(plan, execution)
        broken = check.layers[0].__class__(
            **{**check.layers[0].__dict__, "measured_search_phases": 1}
        )
        assert not broken.search_phases_exact
        check.layers[0] = broken
        assert not check.consistent
        assert "diverges" in check.describe()


class TestExecuteModelConvenience:
    def test_execute_model(self, small_conv_spec, tiny_architecture):
        execution = execute_model(
            [small_conv_spec],
            accelerator=Accelerator(tiny_architecture),
            compiler_config=CompilerConfig(
                activation_bits=4, architecture=tiny_architecture
            ),
            name="convenience",
        )
        assert execution.name == "convenience"
        assert execution.total_ops > 0
