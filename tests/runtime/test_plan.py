"""Tests for execution-plan construction (compile + allocate -> tiles)."""

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.config import APConfig, ArchitectureConfig
from repro.core.compiler import CompilerConfig, compile_model
from repro.errors import CapacityError, CompilationError
from repro.rtm.timing import RTMTechnology
from repro.runtime import build_execution_plan, derive_tile_seed


@pytest.fixture
def tiny_accelerator(tiny_architecture) -> Accelerator:
    return Accelerator(tiny_architecture)


@pytest.fixture
def compiled_small(small_conv_spec, tiny_architecture):
    config = CompilerConfig(activation_bits=4, architecture=tiny_architecture)
    return compile_model([small_conv_spec], config, name="small", emit_programs=True)


class TestBuildExecutionPlan:
    def test_requires_emitted_programs(self, small_conv_spec, tiny_accelerator,
                                       tiny_architecture):
        config = CompilerConfig(activation_bits=4, architecture=tiny_architecture)
        compiled = compile_model([small_conv_spec], config, name="small")
        with pytest.raises(CompilationError):
            build_execution_plan(compiled, accelerator=tiny_accelerator)

    def test_plan_shape(self, compiled_small, tiny_accelerator):
        plan = build_execution_plan(compiled_small, accelerator=tiny_accelerator)
        assert len(plan.layers) == 1
        layer = plan.layers[0]
        mapping = compiled_small.layers[0].mapping
        groups_present = min(len(compiled_small.layers[0].slices),
                             mapping.channel_groups)
        assert len(layer.tiles) == mapping.row_tiles * groups_present
        assert plan.num_tiles == len(layer.tiles)
        assert plan.num_instructions > 0
        assert plan.required_columns > 1
        assert "tile programs" in plan.describe()

    def test_addresses_are_valid_and_distinct_within_round(
        self, compiled_small, tiny_accelerator
    ):
        plan = build_execution_plan(compiled_small, accelerator=tiny_accelerator)
        for layer in plan.layers:
            for round_index, tiles in layer.tiles_by_round().items():
                addresses = [tile.address for tile in tiles]
                assert len(set(addresses)) == len(addresses)
                for address in addresses:
                    tiny_accelerator.validate_address(address)

    def test_every_tile_has_programs_and_rows(self, compiled_small, tiny_accelerator):
        plan = build_execution_plan(compiled_small, accelerator=tiny_accelerator)
        mapping = compiled_small.layers[0].mapping
        for tile in plan.layers[0].tiles:
            assert tile.programs
            assert 0 < tile.rows <= mapping.rows_per_ap
            assert tile.num_instructions >= tile.num_arithmetic_ops > 0

    def test_partial_last_row_tile(self, small_conv_spec):
        # 24-row APs over 64 output positions: 3 tiles, the last with 16 rows.
        architecture = ArchitectureConfig(
            ap=APConfig(rows=24, columns=64, reserved_columns=2),
            aps_per_tile=4,
            tiles_per_bank=2,
            num_banks=1,
            technology=RTMTechnology(domains_per_nanowire=64),
            activation_bits=4,
        )
        config = CompilerConfig(activation_bits=4, architecture=architecture)
        compiled = compile_model([small_conv_spec], config, name="small",
                                 emit_programs=True)
        plan = build_execution_plan(compiled, accelerator=Accelerator(architecture))
        mapping = compiled.layers[0].mapping
        assert mapping.row_tiles == 3
        rows_by_tile = {tile.row_tile: tile.rows for tile in plan.layers[0].tiles}
        assert rows_by_tile[0] == 24
        assert rows_by_tile[2] == mapping.rows_used_in_last_tile == 16

    def test_capacity_error_when_accelerator_too_small(self, small_conv_spec):
        architecture = ArchitectureConfig(
            ap=APConfig(rows=16, columns=64, reserved_columns=2),
            aps_per_tile=1,
            tiles_per_bank=1,
            num_banks=1,
            technology=RTMTechnology(domains_per_nanowire=64),
            activation_bits=4,
        )
        config = CompilerConfig(activation_bits=4, architecture=architecture)
        compiled = compile_model([small_conv_spec], config, name="small",
                                 emit_programs=True)
        # 64 output positions on 16-row APs need 4 row tiles but 1 AP exists.
        with pytest.raises(CapacityError):
            build_execution_plan(compiled, accelerator=Accelerator(architecture))

    def test_capacity_error_when_programs_exceed_columns(self, compiled_small):
        # Compiled against 64-column APs, executed on 8-column hardware: the
        # plan must refuse instead of silently simulating wider CAMs.
        narrow = ArchitectureConfig(
            ap=APConfig(rows=64, columns=8, reserved_columns=2),
            aps_per_tile=2,
            tiles_per_bank=2,
            num_banks=1,
            technology=RTMTechnology(domains_per_nanowire=64),
            activation_bits=4,
        )
        with pytest.raises(CapacityError):
            build_execution_plan(compiled_small, accelerator=Accelerator(narrow))

    def test_sampled_compilation_records_scale(self, small_conv_spec,
                                               tiny_architecture, tiny_accelerator):
        config = CompilerConfig(
            activation_bits=4,
            architecture=tiny_architecture,
            max_slices_per_layer=2,
        )
        compiled = compile_model([small_conv_spec], config, name="small",
                                 emit_programs=True)
        assert len(compiled.layers[0].slices) == 2
        plan = build_execution_plan(compiled, accelerator=tiny_accelerator)
        assert plan.layers[0].scale_factor == pytest.approx(
            small_conv_spec.in_channels / 2
        )


class TestTileSeeds:
    def test_seeds_are_deterministic(self):
        assert derive_tile_seed(0, 1, 2, 3) == derive_tile_seed(0, 1, 2, 3)

    def test_seeds_differ_across_coordinates(self):
        seeds = {
            derive_tile_seed(base, layer, row, group)
            for base in (0, 1)
            for layer in range(3)
            for row in range(3)
            for group in range(3)
        }
        assert len(seeds) == 2 * 3 * 3 * 3

    def test_plan_base_seed_changes_inputs(self, compiled_small, tiny_accelerator):
        plan_a = build_execution_plan(compiled_small, accelerator=tiny_accelerator,
                                      base_seed=0)
        plan_b = build_execution_plan(compiled_small, accelerator=tiny_accelerator,
                                      base_seed=1)
        seeds_a = [tile.input_seed for tile in plan_a.layers[0].tiles]
        seeds_b = [tile.input_seed for tile in plan_b.layers[0].tiles]
        assert seeds_a != seeds_b


class TestResidentCapacityReporting:
    """CapacityError messages must let users auto-size resident deploys."""

    def _minimal_pipeline_model(self):
        from repro.nn.layers import ReLU, TernaryLinear
        from repro.nn.model import Sequential

        model = Sequential(
            [
                TernaryLinear(6, 5, sparsity=0.5, rng=1),
                ReLU(),
                TernaryLinear(5, 4, sparsity=0.5, rng=2),
                ReLU(),
                TernaryLinear(4, 3, sparsity=0.5, rng=3),
            ],
            name="minimal-pipeline",
        )
        return model, (6,)

    def _compile(self, model, shape):
        from repro.nn.stats import model_layer_specs

        specs = model_layer_specs(model, shape)
        return compile_model(
            specs,
            CompilerConfig(activation_bits=4),
            name="minimal-pipeline",
            emit_programs=True,
        )

    def test_error_reports_resident_aps_required(self):
        from repro.runtime import resident_aps_required

        model, shape = self._minimal_pipeline_model()
        compiled = self._compile(model, shape)
        required = resident_aps_required(compiled)
        assert required == len(compiled.layers)  # 1 AP per layer
        arch = ArchitectureConfig(
            aps_per_tile=required - 1, tiles_per_bank=1, num_banks=1
        )
        with pytest.raises(CapacityError) as excinfo:
            build_execution_plan(
                compiled, accelerator=Accelerator(arch), placement="resident"
            )
        message = str(excinfo.value)
        assert f"resident_aps_required={required}" in message
        assert f"with_total_aps({required})" in message
        # Machine-readable: auto-sizing needs no message parsing.
        assert excinfo.value.resident_aps_required == required

    def test_one_ap_per_layer_minimal_pipeline(self):
        """The smallest possible pipeline: every stage is exactly one AP."""
        import numpy as np

        from repro.inference.engine import BatchedInference
        from repro.inference.reference import quantized_reference_forward
        from repro.runtime import resident_aps_required

        model, shape = self._minimal_pipeline_model()
        compiled = self._compile(model, shape)
        required = resident_aps_required(compiled)
        arch = ArchitectureConfig(
            aps_per_tile=required, tiles_per_bank=1, num_banks=1
        )
        accelerator = Accelerator(arch)
        plan = build_execution_plan(
            compiled, accelerator=accelerator, placement="resident"
        )
        addresses = set()
        for layer in plan.layers:
            layer_addresses = {tuple(tile.address) for tile in layer.tiles}
            assert len(layer_addresses) == 1  # one AP per stage
            addresses |= layer_addresses
        assert len(addresses) == required  # stages are disjoint
        accelerator.deploy_plan(plan)

        images = np.random.default_rng(11).normal(size=(3,) + shape)
        engine = BatchedInference(
            model,
            shape,
            bits=4,
            accelerator=accelerator,
            compiled=compiled,
            plan=plan,
            pipeline=True,
        )
        try:
            warm_before = accelerator.residency
            result = engine.run(images)
            warm_after = accelerator.residency
        finally:
            engine.close()
        reference = quantized_reference_forward(
            model, images, input_shape=shape, bits=4
        )
        assert np.array_equal(result.logits, reference)
        assert warm_after.lease_events == warm_before.lease_events
        assert warm_after.reprogram_events == warm_before.reprogram_events
