"""Dependency-driven pipelined dispatch: equivalence, frontier, tracking."""

import threading

import pytest

from repro.arch.accelerator import Accelerator
from repro.core.compiler import CompilerConfig, compile_model
from repro.core.frontend import specs_for_network
from repro.errors import ConfigurationError, SimulationError
from repro.runtime import (
    PipelineScheduler,
    Scheduler,
    build_execution_plan,
    resident_aps_required,
)
from repro.runtime.executors import SerialExecutor, ThreadExecutor
from repro.runtime.pipeline import InFlightTracker, PipelineTask


@pytest.fixture(scope="module")
def compiled_vgg9_sampled():
    specs = specs_for_network("vgg9", sparsity=0.85, rng=0)
    return compile_model(
        specs,
        CompilerConfig(activation_bits=4, max_slices_per_layer=2),
        name="vgg9",
        emit_programs=True,
    )


def _build(compiled, placement):
    accelerator = Accelerator()
    if placement == "resident":
        accelerator = Accelerator(
            config=accelerator.config.with_total_aps(
                resident_aps_required(compiled)
            )
        )
    plan = build_execution_plan(
        compiled, accelerator=accelerator, placement=placement
    )
    return accelerator, plan


class TestPipelineSchedulerEquivalence:
    @pytest.mark.parametrize("placement", ["shared", "resident"])
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_byte_identical_to_layer_synchronous(
        self, compiled_vgg9_sampled, placement, executor
    ):
        """Pipelined dispatch changes wall-clock, not a single counter."""
        acc_sync, plan_sync = _build(compiled_vgg9_sampled, placement)
        acc_pipe, plan_pipe = _build(compiled_vgg9_sampled, placement)
        with Scheduler(acc_sync, executor=executor, workers=2) as sync:
            baseline = sync.run(plan_sync)
        with PipelineScheduler(acc_pipe, executor=executor, workers=2) as pipe:
            pipelined = pipe.run(plan_pipe)

        assert pipelined.mode == "pipelined"
        assert baseline.mode == "layer-sync"
        assert pipelined.total_stats == baseline.total_stats
        assert pipelined.checksum == baseline.checksum
        assert pipelined.energy_uj == baseline.energy_uj
        assert pipelined.latency_ms == baseline.latency_ms
        for expected, actual in zip(baseline.layers, pipelined.layers):
            assert actual.stats == expected.stats
            assert actual.energy == expected.energy
            assert actual.latency == expected.latency
            assert actual.checksum == expected.checksum
            assert actual.total_ops == expected.total_ops
        # Accelerator-side ledgers agree too (stats and residency).
        assert acc_pipe.tile_stats() == acc_sync.tile_stats()
        assert acc_pipe.residency.warm_hits == acc_sync.residency.warm_hits
        assert acc_pipe.residency.lease_events == acc_sync.residency.lease_events

    def test_resident_plan_overlaps_layer_groups(self, compiled_vgg9_sampled):
        """Every resident layer group sees dispatches (overlap witness)."""
        accelerator, plan = _build(compiled_vgg9_sampled, "resident")
        scheduler = PipelineScheduler(accelerator, executor="serial")
        try:
            scheduler.run(plan)
        finally:
            scheduler.close()
        trace = scheduler.tracker.trace()
        assert set(trace) == {layer.layer_index for layer in plan.layers}
        for layer in plan.layers:
            assert trace[layer.layer_index].dispatches == len(layer.tiles)
            assert trace[layer.layer_index].in_flight == 0


class TestRunGraphFrontier:
    def _scheduler(self, **kwargs):
        return PipelineScheduler(Accelerator(), executor="serial", **kwargs)

    def test_dependencies_execute_before_dependents(self):
        order = []

        def record(payload):
            order.append(payload)
            return payload

        tasks = [
            PipelineTask(key=(1,), group="g", fn=record, payload=1, depends_on=((0,),)),
            PipelineTask(key=(0,), group="g", fn=record, payload=0),
            PipelineTask(key=(2,), group="g", fn=record, payload=2, depends_on=((1,),)),
        ]
        scheduler = self._scheduler()
        results = scheduler.run_graph(tasks)
        scheduler.close()
        assert order == [0, 1, 2]
        assert results == {(0,): 0, (1,): 1, (2,): 2}

    def test_duplicate_keys_rejected(self):
        tasks = [
            PipelineTask(key=(0,), group="g", fn=lambda p: p, payload=0),
            PipelineTask(key=(0,), group="g", fn=lambda p: p, payload=1),
        ]
        with pytest.raises(ConfigurationError, match="duplicate"):
            self._scheduler().run_graph(tasks)

    def test_unknown_dependency_rejected(self):
        tasks = [
            PipelineTask(
                key=(0,), group="g", fn=lambda p: p, payload=0, depends_on=((9,),)
            )
        ]
        with pytest.raises(ConfigurationError, match="unknown"):
            self._scheduler().run_graph(tasks)

    def test_dependency_cycle_detected(self):
        tasks = [
            PipelineTask(
                key=(0,), group="g", fn=lambda p: p, payload=0, depends_on=((1,),)
            ),
            PipelineTask(
                key=(1,), group="g", fn=lambda p: p, payload=1, depends_on=((0,),)
            ),
        ]
        with pytest.raises(SimulationError, match="cycle"):
            self._scheduler().run_graph(tasks)

    def test_worker_error_propagates_after_drain(self):
        executed = []

        def work(payload):
            if payload == 1:
                raise ValueError("boom")
            executed.append(payload)
            return payload

        tasks = [
            PipelineTask(key=(0,), group="g", fn=work, payload=0),
            PipelineTask(key=(1,), group="g", fn=work, payload=1),
            # Dependent of the failing task must never run.
            PipelineTask(
                key=(2,), group="g", fn=work, payload=2, depends_on=((1,),)
            ),
        ]
        scheduler = self._scheduler()
        with pytest.raises(ValueError, match="boom"):
            scheduler.run_graph(tasks)
        scheduler.close()
        assert 2 not in executed

    def test_group_cap_defers_to_completion(self):
        """max_in_flight=1 serializes a group without deadlocking."""
        scheduler = self._scheduler(max_in_flight=1)
        tasks = [
            PipelineTask(key=(index,), group="stage", fn=lambda p: p, payload=index)
            for index in range(5)
        ]
        results = scheduler.run_graph(tasks)
        scheduler.close()
        assert len(results) == 5
        trace = scheduler.tracker.trace()["stage"]
        assert trace.dispatches == 5
        assert trace.max_in_flight == 1


class TestInFlightTracker:
    def test_tracks_high_water_mark(self):
        tracker = InFlightTracker()
        tracker.enter("g")
        tracker.enter("g")
        tracker.exit("g")
        tracker.enter("g")
        trace = tracker.trace()["g"]
        assert trace.dispatches == 3
        assert trace.in_flight == 2
        assert trace.max_in_flight == 2

    def test_cap_blocks_until_exit(self):
        tracker = InFlightTracker(max_in_flight=1)
        tracker.enter("g")
        assert not tracker.try_enter("g")
        released = threading.Event()

        def releaser():
            released.wait()
            tracker.exit("g")

        thread = threading.Thread(target=releaser)
        thread.start()
        released.set()
        tracker.enter("g")  # blocks until the releaser exits
        thread.join()
        assert tracker.trace()["g"].in_flight == 1

    def test_exit_underflow_raises(self):
        tracker = InFlightTracker()
        with pytest.raises(SimulationError, match="underflow"):
            tracker.exit("g")

    def test_invalid_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            InFlightTracker(max_in_flight=0)


class TestExecutorAsyncInterface:
    def test_serial_submit_returns_settled_futures(self):
        executor = SerialExecutor()
        futures = executor.submit_tasks(lambda p: p * 2, [1, 2, 3])
        assert all(future.done() for future in futures)
        assert [future.result() for future in futures] == [2, 4, 6]
        executor.drain()  # no-op

    def test_serial_submit_captures_exceptions(self):
        executor = SerialExecutor()

        def work(payload):
            raise RuntimeError("bad payload")

        (future,) = executor.submit_tasks(work, [1])
        assert future.done()
        with pytest.raises(RuntimeError, match="bad payload"):
            future.result()

    def test_thread_submit_and_drain(self):
        executor = ThreadExecutor(workers=2)
        try:
            futures = executor.submit_tasks(lambda p: p + 1, list(range(8)))
            executor.drain()
            assert all(future.done() for future in futures)
            assert sorted(future.result() for future in futures) == list(
                range(1, 9)
            )
        finally:
            executor.close()
        executor.close()  # idempotent

    def test_scheduler_close_idempotent(self):
        scheduler = Scheduler(Accelerator(), executor="thread", workers=2)
        scheduler.close()
        scheduler.close()
        with Scheduler(Accelerator(), executor="serial") as inner:
            assert inner is not None
