"""Executor equivalence: serial / parallel / thread, reference / vectorized."""

import numpy as np
import pytest

from repro.arch.accelerator import Accelerator
from repro.core.compiler import CompilerConfig, compile_model
from repro.errors import ConfigurationError
from repro.runtime import build_execution_plan
from repro.runtime.executors import (
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    generate_tile_inputs,
    resolve_executor,
)


@pytest.fixture(scope="module")
def small_plan(tiny_architecture_module):
    """A compiled + planned two-layer model shared by the equivalence tests."""
    from repro.nn.stats import ConvLayerSpec
    from repro.nn.ternary import synthetic_ternary_weights

    specs = [
        ConvLayerSpec(
            name="conv_a",
            weights=synthetic_ternary_weights((6, 3, 3, 3), 0.5, rng=11),
            input_height=8,
            input_width=8,
            padding=1,
        ),
        ConvLayerSpec(
            name="conv_b",
            weights=synthetic_ternary_weights((4, 6, 3, 3), 0.5, rng=12),
            input_height=8,
            input_width=8,
            padding=1,
        ),
    ]
    config = CompilerConfig(activation_bits=4, architecture=tiny_architecture_module)
    compiled = compile_model(specs, config, name="pair", emit_programs=True)
    accelerator = Accelerator(tiny_architecture_module)
    return build_execution_plan(compiled, accelerator=accelerator, base_seed=42)


@pytest.fixture(scope="module")
def tiny_architecture_module():
    from repro.arch.config import APConfig, ArchitectureConfig
    from repro.rtm.timing import RTMTechnology

    return ArchitectureConfig(
        ap=APConfig(rows=64, columns=64, reserved_columns=2),
        aps_per_tile=2,
        tiles_per_bank=2,
        num_banks=1,
        technology=RTMTechnology(domains_per_nanowire=64),
        activation_bits=4,
    )


def _execute(plan, architecture, executor, workers=None, backend="vectorized"):
    accelerator = Accelerator(architecture, backend=backend)
    return accelerator.execute_plan(plan, executor=executor, workers=workers)


class TestRegistry:
    def test_available_executors(self):
        assert available_executors() == ["parallel", "serial", "thread"]

    def test_resolve_by_name_class_and_instance(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor(ParallelExecutor, workers=2), ParallelExecutor)
        instance = ThreadExecutor(workers=2)
        assert resolve_executor(instance) is instance

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_executor("vectorized")
        with pytest.raises(ConfigurationError):
            resolve_executor(3.14)

    def test_instance_with_conflicting_workers_rejected(self):
        instance = ParallelExecutor(workers=2)
        with pytest.raises(ConfigurationError):
            resolve_executor(instance, workers=8)
        assert resolve_executor(instance, workers=2) is instance
        assert resolve_executor(instance) is instance

    def test_worker_defaults(self):
        assert SerialExecutor(workers=8).workers == 1
        assert ParallelExecutor(workers=3).workers == 3
        assert ParallelExecutor(workers=None).workers >= 1


class TestDeterministicInputs:
    def test_same_seed_same_inputs(self, small_plan):
        tile = small_plan.layers[0].tiles[0]
        program = tile.programs[0]
        first = generate_tile_inputs(program, tile.rows, tile.input_seed, 4, False)
        second = generate_tile_inputs(program, tile.rows, tile.input_seed, 4, False)
        assert set(first) == set(program.input_columns)
        for name in first:
            assert np.array_equal(first[name], second[name])
            assert first[name].min() >= 0
            assert first[name].max() < 16

    def test_signed_range(self, small_plan):
        tile = small_plan.layers[0].tiles[0]
        program = tile.programs[0]
        inputs = generate_tile_inputs(program, tile.rows, 7, 4, True)
        for values in inputs.values():
            assert values.min() >= -8
            assert values.max() < 8


class TestExecutorEquivalence:
    """The acceptance contract: byte-identical aggregated CAMStats."""

    def test_serial_vs_parallel(self, small_plan, tiny_architecture_module):
        serial = _execute(small_plan, tiny_architecture_module, "serial")
        parallel = _execute(small_plan, tiny_architecture_module, "parallel", workers=2)
        assert serial.total_stats == parallel.total_stats
        assert serial.checksum == parallel.checksum
        for left, right in zip(serial.layers, parallel.layers):
            assert left.stats == right.stats
            assert left.checksum == right.checksum

    def test_serial_vs_thread(self, small_plan, tiny_architecture_module):
        serial = _execute(small_plan, tiny_architecture_module, "serial")
        threaded = _execute(small_plan, tiny_architecture_module, "thread", workers=2)
        assert serial.total_stats == threaded.total_stats
        assert serial.checksum == threaded.checksum

    def test_reference_vs_vectorized(self, small_plan, tiny_architecture_module):
        vectorized = _execute(small_plan, tiny_architecture_module, "serial",
                              backend="vectorized")
        reference = _execute(small_plan, tiny_architecture_module, "serial",
                             backend="reference")
        assert vectorized.total_stats == reference.total_stats
        assert vectorized.checksum == reference.checksum

    def test_repeated_runs_identical(self, small_plan, tiny_architecture_module):
        first = _execute(small_plan, tiny_architecture_module, "serial")
        second = _execute(small_plan, tiny_architecture_module, "serial")
        assert first.total_stats == second.total_stats
        assert first.checksum == second.checksum

    def test_results_preserve_tile_order(self, small_plan, tiny_architecture_module):
        executor = resolve_executor("parallel", workers=2)
        try:
            tiles = small_plan.layers[0].tiles
            results = executor.run(
                tiles,
                small_plan.required_columns,
                backend="vectorized",
                technology=tiny_architecture_module.technology,
            )
            assert [result.tile_index for result in results] == list(range(len(tiles)))
            assert [result.address for result in results] == [
                tuple(tile.address) for tile in tiles
            ]
        finally:
            executor.close()
