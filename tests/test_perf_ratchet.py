"""Unit tests of the CI perf ratchet (``benchmarks/perf_ratchet.py``)."""

import importlib.util
import json
from pathlib import Path

import pytest

_MODULE_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / "perf_ratchet.py"
_spec = importlib.util.spec_from_file_location("perf_ratchet", _MODULE_PATH)
perf_ratchet = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_ratchet)

BASELINE = {"megakernel_speedup": 12.0, "resnet18_fullwidth_run_s": 44.0}


class TestCheckRatchets:
    def test_identical_metrics_pass(self):
        assert perf_ratchet.check_ratchets(BASELINE, dict(BASELINE)) == []

    def test_improvements_pass(self):
        current = {"megakernel_speedup": 30.0, "resnet18_fullwidth_run_s": 10.0}
        assert perf_ratchet.check_ratchets(BASELINE, current) == []

    def test_within_tolerance_passes(self):
        current = {
            "megakernel_speedup": 12.0 * 0.81,
            "resnet18_fullwidth_run_s": 44.0 * 1.19,
        }
        assert perf_ratchet.check_ratchets(BASELINE, current) == []

    def test_speedup_regression_fails(self):
        current = dict(BASELINE, megakernel_speedup=12.0 * 0.79)
        failures = perf_ratchet.check_ratchets(BASELINE, current)
        assert len(failures) == 1
        assert "megakernel_speedup" in failures[0]

    def test_runtime_regression_fails(self):
        current = dict(BASELINE, resnet18_fullwidth_run_s=44.0 * 1.21)
        failures = perf_ratchet.check_ratchets(BASELINE, current)
        assert len(failures) == 1
        assert "resnet18_fullwidth_run_s" in failures[0]

    def test_missing_metrics_fail(self):
        failures = perf_ratchet.check_ratchets(BASELINE, {})
        assert len(failures) == 2
        failures = perf_ratchet.check_ratchets({}, BASELINE)
        assert len(failures) == 2


class TestMain:
    @staticmethod
    def _write(path, metrics):
        path.write_text(json.dumps({"name": "inference", "metrics": metrics}))
        return path

    def test_main_ok(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "baseline.json", BASELINE)
        current = self._write(tmp_path / "current.json", dict(BASELINE))
        code = perf_ratchet.main(
            ["--baseline", str(baseline), "--current", str(current)]
        )
        assert code == 0
        assert "perf ratchet: OK" in capsys.readouterr().out

    def test_main_regression_exits_nonzero(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "baseline.json", BASELINE)
        current = self._write(
            tmp_path / "current.json",
            dict(BASELINE, megakernel_speedup=1.0),
        )
        code = perf_ratchet.main(
            ["--baseline", str(baseline), "--current", str(current)]
        )
        assert code == 1
        assert "PERF RATCHET FAILED" in capsys.readouterr().err

    def test_main_rejects_malformed_report(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "inference"}))
        good = self._write(tmp_path / "good.json", BASELINE)
        with pytest.raises(SystemExit):
            perf_ratchet.main(["--baseline", str(bad), "--current", str(good)])

    def test_committed_baseline_is_loadable(self):
        """The baseline CI diffs against must exist and carry both metrics."""
        baseline = perf_ratchet._load_metrics(
            _MODULE_PATH.parent / "baselines" / "BENCH_inference.json"
        )
        for ratchet in perf_ratchet.RATCHETS:
            assert ratchet.metric in baseline
