"""Tests for the AP instruction set."""

import pytest

from repro.ap.isa import APInstruction, APOpcode, APProgram, ColumnRegion
from repro.errors import CompilationError


def region(column, width=4, offset=0):
    return ColumnRegion(column=column, width=width, domain_offset=offset)


class TestColumnRegion:
    def test_bit_position_within_width(self):
        r = region(3, width=4, offset=8)
        assert r.bit_position(0) == 8
        assert r.bit_position(3) == 11

    def test_bit_position_sign_extends(self):
        r = region(3, width=4, offset=8)
        assert r.bit_position(7) == 11  # clamped to the MSB

    def test_end_domain(self):
        assert region(0, width=5, offset=2).end_domain == 7

    def test_invalid_fields(self):
        with pytest.raises(CompilationError):
            ColumnRegion(column=-1, width=4)
        with pytest.raises(CompilationError):
            ColumnRegion(column=0, width=0)
        with pytest.raises(CompilationError):
            ColumnRegion(column=0, width=1, domain_offset=-1)
        with pytest.raises(CompilationError):
            region(0).bit_position(-1)


class TestAPOpcode:
    def test_arithmetic_classification(self):
        assert APOpcode.ADD_INPLACE.is_arithmetic
        assert APOpcode.SUB_OUTOFPLACE.is_arithmetic
        assert not APOpcode.COPY.is_arithmetic
        assert not APOpcode.CLEAR.is_arithmetic

    def test_inplace_classification(self):
        assert APOpcode.ADD_INPLACE.is_inplace
        assert not APOpcode.ADD_OUTOFPLACE.is_inplace

    def test_lut_kind(self):
        assert APOpcode.ADD_INPLACE.lut_kind == "add"
        assert APOpcode.SUB_OUTOFPLACE.lut_kind == "sub"
        assert APOpcode.COPY.lut_kind is None


class TestAPInstructionValidation:
    def test_arithmetic_requires_two_sources(self):
        with pytest.raises(CompilationError):
            APInstruction(opcode=APOpcode.ADD_OUTOFPLACE, dest=region(3), src_a=region(1))

    def test_inplace_add_dest_must_be_a_source(self):
        with pytest.raises(CompilationError):
            APInstruction(
                opcode=APOpcode.ADD_INPLACE,
                dest=region(3),
                src_a=region(1),
                src_b=region(2),
            )

    def test_inplace_sub_dest_must_be_minuend(self):
        with pytest.raises(CompilationError):
            APInstruction(
                opcode=APOpcode.SUB_INPLACE,
                dest=region(1),
                src_a=region(1),
                src_b=region(2),
            )
        # correct form: dest == src_b
        APInstruction(
            opcode=APOpcode.SUB_INPLACE,
            dest=region(2),
            src_a=region(1),
            src_b=region(2),
        )

    def test_dest_may_be_narrower_than_source_regions(self):
        """Source regions describe allocated storage, which may exceed the
        execution width; the instruction is structurally valid."""
        instr = APInstruction(
            opcode=APOpcode.ADD_OUTOFPLACE,
            dest=region(3, width=3),
            src_a=region(1, width=4),
            src_b=region(2, width=4),
        )
        assert instr.width == 3

    def test_extra_dests_only_out_of_place(self):
        with pytest.raises(CompilationError):
            APInstruction(
                opcode=APOpcode.ADD_INPLACE,
                dest=region(2),
                src_a=region(1),
                src_b=region(2),
                extra_dests=(region(5),),
            )

    def test_copy_requires_source(self):
        with pytest.raises(CompilationError):
            APInstruction(opcode=APOpcode.COPY, dest=region(2))

    def test_width_is_dest_width(self):
        instr = APInstruction(
            opcode=APOpcode.ADD_OUTOFPLACE,
            dest=region(3, width=7),
            src_a=region(1, width=4),
            src_b=region(2, width=5),
        )
        assert instr.width == 7
        assert instr.all_dests == (region(3, width=7),)

    def test_str_rendering(self):
        instr = APInstruction(
            opcode=APOpcode.SUB_OUTOFPLACE,
            dest=region(3, width=6),
            src_a=region(1, width=4),
            src_b=region(2, width=4),
            comment="demo",
        )
        text = str(instr)
        assert "sub_outofplace" in text
        assert "demo" in text


class TestAPProgram:
    def _add(self, dest, a, b, inplace=False):
        opcode = APOpcode.ADD_INPLACE if inplace else APOpcode.ADD_OUTOFPLACE
        return APInstruction(opcode=opcode, dest=dest, src_a=a, src_b=b)

    def test_counters(self):
        program = APProgram(name="p")
        program.append(self._add(region(3), region(1), region(2)))
        program.append(self._add(region(2), region(1), region(2), inplace=True))
        program.append(APInstruction(opcode=APOpcode.CLEAR, dest=region(4)))
        assert len(program) == 3
        assert program.num_arithmetic_ops == 2
        assert program.num_inplace_ops == 1
        assert program.num_outofplace_ops == 1

    def test_histogram_and_columns(self):
        program = APProgram()
        program.append(self._add(region(7, width=5, offset=10), region(1), region(2)))
        histogram = program.opcode_histogram()
        assert histogram == {"add_outofplace": 1}
        assert program.max_column_used == 7
        assert program.max_domain_used == 15

    def test_listing_contains_instructions(self):
        program = APProgram(name="demo")
        program.append(self._add(region(3), region(1), region(2)))
        listing = program.listing()
        assert "demo" in listing
        assert "add_outofplace" in listing

    def test_extend_and_iter(self):
        program = APProgram()
        instrs = [self._add(region(3), region(1), region(2)) for _ in range(3)]
        program.extend(instrs)
        assert list(program) == instrs
