"""Cross-backend equivalence: vectorized vs. reference execution.

The contract of :mod:`repro.ap.backends` is that every backend leaves the
CAM in a byte-identical state and accumulates identical
:class:`~repro.cam.stats.CAMStats` counters.  These tests enforce it with a
deterministic opcode matrix, targeted edge cases (sign extension, narrow
extra destinations, partial rows, fallback layouts) and a randomized
program fuzz.
"""

import numpy as np
import pytest

from repro.ap.backends import (
    DEFAULT_BACKEND,
    ReferenceBackend,
    VectorizedBackend,
    available_backends,
    create_backend,
    register_backend,
    resolve_backend,
)
from repro.ap.backends.harness import (
    compare_backends,
    random_inputs,
    random_program,
)
from repro.ap.backends.vectorized import lut_truth_matrix
from repro.ap.core import AssociativeProcessor
from repro.ap.isa import APInstruction, APOpcode, APProgram, ColumnRegion
from repro.ap.lut import all_luts, simulate_lut_passes
from repro.errors import ConfigurationError


def run_both(program, inputs, rows=16, columns=16):
    comparison = compare_backends(program, inputs, rows=rows, columns=columns)
    assert comparison.equivalent, comparison.describe()
    return comparison


def single_instruction_program(instruction, input_regions, output_regions):
    program = APProgram(name="unit", carry_column=0)
    program.input_columns = input_regions
    program.output_columns = output_regions
    program.append(instruction)
    return program


class TestRegistry:
    def test_available_backends(self):
        assert "reference" in available_backends()
        assert "vectorized" in available_backends()
        # The fast backend is the default; the interpreter stays the
        # ground truth and can be forced via REPRO_AP_BACKEND (which CI
        # uses for a full-suite ground-truth run).
        import os

        expected = os.environ.get("REPRO_AP_BACKEND", "").strip() or "vectorized"
        assert DEFAULT_BACKEND == expected

    def test_resolve_by_name_and_class(self):
        assert resolve_backend("vectorized") is VectorizedBackend
        assert resolve_backend(ReferenceBackend) is ReferenceBackend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("warp-drive")
        with pytest.raises(ConfigurationError):
            AssociativeProcessor(rows=4, columns=4, backend="warp-drive")

    def test_register_requires_name(self):
        class Nameless(ReferenceBackend):
            name = "abstract"

        with pytest.raises(ConfigurationError):
            register_backend(Nameless)

    def test_create_backend_binds_array(self):
        ap = AssociativeProcessor(rows=4, columns=4, backend="vectorized")
        assert ap.backend.name == "vectorized"
        assert ap.backend.array is ap.array
        backend = create_backend("reference", ap.array, 0)
        assert backend.array is ap.array


class TestTruthTensors:
    @pytest.mark.parametrize("lut", all_luts(), ids=lambda lut: lut.name)
    def test_truth_matrix_matches_pass_simulation(self, lut):
        """Each truth-tensor row reproduces the firing passes of one state."""
        matrix = lut_truth_matrix(lut.kind, lut.inplace)
        assert matrix.shape == (8, len(lut.entries))
        for state in range(8):
            carry, b, a = (state >> 2) & 1, (state >> 1) & 1, state & 1
            # Re-simulate and count matches independently.
            state_carry, state_b, state_r = carry, b, 0
            fired = []
            for entry in lut.entries:
                if (state_carry, state_b, a) == entry.search:
                    fired.append(1)
                    if lut.inplace:
                        state_carry, state_b = entry.write
                    else:
                        state_carry, state_r = entry.write
                else:
                    fired.append(0)
            assert list(matrix[state]) == fired
            # And the final state agrees with the ordered pass simulation.
            got_carry, got_result = simulate_lut_passes(lut, carry, b, a)
            assert (got_carry, got_result) == (
                state_carry,
                state_b if lut.inplace else state_r,
            )


class TestOpcodeMatrix:
    """Every opcode/placement combination, field-by-field equivalence."""

    @pytest.mark.parametrize("kind", ["add", "sub"])
    @pytest.mark.parametrize("inplace", [False, True])
    @pytest.mark.parametrize("width", [1, 4, 9])
    def test_arithmetic(self, rng, kind, inplace, width):
        a = ColumnRegion(column=1, width=width)
        b = ColumnRegion(column=2, width=width)
        if inplace:
            dest = b
            opcode = APOpcode.ADD_INPLACE if kind == "add" else APOpcode.SUB_INPLACE
        else:
            dest = ColumnRegion(column=3, width=width)
            opcode = (
                APOpcode.ADD_OUTOFPLACE if kind == "add" else APOpcode.SUB_OUTOFPLACE
            )
        program = single_instruction_program(
            APInstruction(opcode=opcode, dest=dest, src_a=a, src_b=b),
            {"a": a, "b": b},
            {"y": dest},
        )
        inputs = random_inputs(program, 16, rng)
        run_both(program, inputs)

    def test_inplace_add_overwriting_src_a(self, rng):
        """The commutative swap path (dest == src_a) stays equivalent."""
        a = ColumnRegion(column=1, width=6)
        b = ColumnRegion(column=2, width=6)
        program = single_instruction_program(
            APInstruction(opcode=APOpcode.ADD_INPLACE, dest=a, src_a=a, src_b=b),
            {"a": a, "b": b},
            {"y": a},
        )
        run_both(program, random_inputs(program, 16, rng))

    def test_sign_extended_narrow_source(self, rng):
        narrow = ColumnRegion(column=1, width=3)
        wide = ColumnRegion(column=2, width=9)
        dest = ColumnRegion(column=3, width=9)
        program = single_instruction_program(
            APInstruction(
                opcode=APOpcode.SUB_OUTOFPLACE, dest=dest, src_a=narrow, src_b=wide
            ),
            {"a": narrow, "b": wide},
            {"y": dest},
        )
        run_both(program, random_inputs(program, 16, rng))

    def test_multi_destination_write(self, rng):
        a = ColumnRegion(column=1, width=5)
        b = ColumnRegion(column=2, width=5)
        dest = ColumnRegion(column=3, width=6)
        extra = ColumnRegion(column=4, width=6, domain_offset=2)
        program = single_instruction_program(
            APInstruction(
                opcode=APOpcode.ADD_OUTOFPLACE,
                dest=dest,
                src_a=a,
                src_b=b,
                extra_dests=(extra,),
            ),
            {"a": a, "b": b},
            {"y": dest, "y2": extra},
        )
        run_both(program, random_inputs(program, 16, rng))

    def test_narrow_extra_destination_keeps_stale_bits(self, rng):
        """Extra dests narrower than the instruction expose stale-bit rules."""
        a = ColumnRegion(column=1, width=5)
        b = ColumnRegion(column=2, width=5)
        dest = ColumnRegion(column=3, width=9)
        extra = ColumnRegion(column=4, width=3)
        seed_extra = APInstruction(
            opcode=APOpcode.COPY, dest=ColumnRegion(column=4, width=9), src_a=b
        )
        program = APProgram(name="stale", carry_column=0)
        program.input_columns = {"a": a, "b": b}
        program.output_columns = {"y": dest}
        program.append(seed_extra)  # leave stale bits above the extra region
        program.append(
            APInstruction(
                opcode=APOpcode.SUB_OUTOFPLACE,
                dest=dest,
                src_a=a,
                src_b=b,
                extra_dests=(extra,),
            )
        )
        run_both(program, random_inputs(program, 16, rng))

    @pytest.mark.parametrize("widths", [(5, 5), (3, 7), (9, 4)])
    def test_copy(self, rng, widths):
        src_width, dest_width = widths
        src = ColumnRegion(column=1, width=src_width)
        dest = ColumnRegion(column=2, width=dest_width)
        program = single_instruction_program(
            APInstruction(opcode=APOpcode.COPY, dest=dest, src_a=src),
            {"x": src},
            {"y": dest},
        )
        run_both(program, random_inputs(program, 16, rng))

    def test_clear(self, rng):
        region = ColumnRegion(column=1, width=6, domain_offset=1)
        program = single_instruction_program(
            APInstruction(opcode=APOpcode.CLEAR, dest=region),
            {"x": region},
            {"y": region},
        )
        run_both(program, random_inputs(program, 16, rng))

    def test_partial_rows(self, rng):
        a = ColumnRegion(column=1, width=5)
        b = ColumnRegion(column=2, width=5)
        dest = ColumnRegion(column=3, width=6)
        program = single_instruction_program(
            APInstruction(opcode=APOpcode.ADD_OUTOFPLACE, dest=dest, src_a=a, src_b=b),
            {"a": a, "b": b},
            {"y": dest},
        )
        run_both(program, random_inputs(program, 5, rng), rows=16)


class TestFallbackLayouts:
    """Degenerate layouts route through the embedded interpreter untouched."""

    def test_copy_onto_itself(self, rng):
        region = ColumnRegion(column=1, width=5)
        program = single_instruction_program(
            APInstruction(opcode=APOpcode.COPY, dest=region, src_a=region),
            {"x": region},
            {"y": region},
        )
        run_both(program, random_inputs(program, 8, rng))

    def test_wide_words_fall_back(self, rng):
        a = ColumnRegion(column=1, width=62)
        b = ColumnRegion(column=2, width=62)
        dest = ColumnRegion(column=3, width=62)
        program = single_instruction_program(
            APInstruction(opcode=APOpcode.ADD_OUTOFPLACE, dest=dest, src_a=a, src_b=b),
            {"a": a, "b": b},
            {"y": dest},
        )
        inputs = {
            "a": rng.integers(-(2**40), 2**40, 6),
            "b": rng.integers(-(2**40), 2**40, 6),
        }
        run_both(program, inputs, rows=6)


class TestRandomizedPrograms:
    """Fuzz: whole random programs, every observable compared."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_program_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        num_instructions = int(rng.integers(8, 32))
        columns = int(rng.integers(10, 28))
        program = random_program(
            rng, num_instructions=num_instructions, columns=columns, max_width=11
        )
        rows = int(rng.integers(1, 48))
        inputs = random_inputs(program, rows, rng)
        run_both(program, inputs, rows=rows, columns=columns)

    def test_vectorized_matches_numpy_semantics(self, rng):
        """End to end: the vectorized AP still computes exact integer math."""
        ap = AssociativeProcessor(rows=32, columns=16, backend="vectorized")
        a = rng.integers(-100, 100, 32)
        b = rng.integers(-100, 100, 32)
        assert np.array_equal(ap.add_vectors(a, b, width=9), a + b)
        assert np.array_equal(ap.sub_vectors(a, b, width=9), a - b)


class TestAcceleratorThreading:
    def test_functional_ap_inherits_backend(self, tiny_architecture):
        from repro.arch.accelerator import Accelerator

        accelerator = Accelerator(config=tiny_architecture, backend="vectorized")
        ap = accelerator.functional_ap((0, 0, 0))
        assert ap.backend.name == "vectorized"

    def test_default_backend_is_the_session_default(self, tiny_architecture):
        from repro.ap.backends import DEFAULT_BACKEND
        from repro.arch.accelerator import Accelerator

        accelerator = Accelerator(config=tiny_architecture)
        ap = accelerator.functional_ap((0, 0, 0))
        assert ap.backend.name == DEFAULT_BACKEND

    def test_env_override_selects_default(self, monkeypatch):
        from repro.ap import backends as backends_module

        monkeypatch.setenv(backends_module.BACKEND_ENV_VARIABLE, "reference")
        assert backends_module._default_backend() == "reference"
        monkeypatch.setenv(backends_module.BACKEND_ENV_VARIABLE, "no-such")
        with pytest.raises(ConfigurationError):
            backends_module._default_backend()
        monkeypatch.delenv(backends_module.BACKEND_ENV_VARIABLE)
        assert backends_module._default_backend() == "vectorized"


class TestCostModelCrosscheck:
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_crosscheck_consistent(self, backend):
        from repro.perf.model import PerformanceModelConfig, crosscheck_cost_model

        result = crosscheck_cost_model(
            config=PerformanceModelConfig(execution_backend=backend)
        )
        assert result.backend == backend
        assert result.consistent

    def test_backends_measure_identical_events(self):
        from repro.perf.model import PerformanceModelConfig, crosscheck_cost_model

        runs = [
            crosscheck_cost_model(
                config=PerformanceModelConfig(execution_backend=backend)
            )
            for backend in available_backends()
        ]
        measured = {
            (run.measured_search_phases, run.measured_write_phases) for run in runs
        }
        assert len(measured) == 1
