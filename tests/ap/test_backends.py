"""Cross-backend equivalence: batched vs. vectorized vs. reference execution.

The contract of :mod:`repro.ap.backends` is that every backend leaves the
CAM in a byte-identical state and accumulates identical
:class:`~repro.cam.stats.CAMStats` counters.  These tests enforce it with a
deterministic opcode matrix, targeted edge cases (sign extension, narrow
extra destinations, partial rows, fallback layouts) and a randomized
program fuzz.  The wave tests additionally pin the layer-level contract of
the ``batched`` backend: :func:`~repro.ap.backends.batched.
execute_program_wave` either reproduces per-instance execution byte for
byte or declines (returns ``None``) so the caller falls back.
"""

import numpy as np
import pytest

from repro.ap.backends import (
    DEFAULT_BACKEND,
    BatchedBackend,
    ReferenceBackend,
    VectorizedBackend,
    available_backends,
    create_backend,
    register_backend,
    resolve_backend,
)
from repro.ap.backends.batched import (
    StagedWaveInputs,
    execute_program_wave,
    wave_staging_plan,
)
from repro.ap.backends.harness import (
    compare_backends,
    random_inputs,
    random_program,
)
from repro.ap.backends.packing import unpack_bits
from repro.ap.backends.vectorized import lut_truth_matrix
from repro.ap.core import AssociativeProcessor
from repro.ap.isa import APInstruction, APOpcode, APProgram, ColumnRegion
from repro.ap.lut import all_luts, simulate_lut_passes
from repro.errors import ConfigurationError


def run_both(program, inputs, rows=16, columns=16):
    comparison = compare_backends(program, inputs, rows=rows, columns=columns)
    assert comparison.equivalent, comparison.describe()
    return comparison


def single_instruction_program(instruction, input_regions, output_regions):
    program = APProgram(name="unit", carry_column=0)
    program.input_columns = input_regions
    program.output_columns = output_regions
    program.append(instruction)
    return program


class TestRegistry:
    def test_available_backends(self):
        assert "reference" in available_backends()
        assert "vectorized" in available_backends()
        assert "batched" in available_backends()
        # The fast backend is the default; the interpreter stays the
        # ground truth and can be forced via REPRO_AP_BACKEND (which CI
        # uses for a full-suite ground-truth run).
        import os

        expected = os.environ.get("REPRO_AP_BACKEND", "").strip() or "vectorized"
        assert DEFAULT_BACKEND == expected

    def test_resolve_by_name_and_class(self):
        assert resolve_backend("vectorized") is VectorizedBackend
        assert resolve_backend("batched") is BatchedBackend
        assert resolve_backend(ReferenceBackend) is ReferenceBackend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("warp-drive")
        with pytest.raises(ConfigurationError):
            AssociativeProcessor(rows=4, columns=4, backend="warp-drive")

    def test_register_requires_name(self):
        class Nameless(ReferenceBackend):
            name = "abstract"

        with pytest.raises(ConfigurationError):
            register_backend(Nameless)

    def test_create_backend_binds_array(self):
        ap = AssociativeProcessor(rows=4, columns=4, backend="vectorized")
        assert ap.backend.name == "vectorized"
        assert ap.backend.array is ap.array
        backend = create_backend("reference", ap.array, 0)
        assert backend.array is ap.array


class TestTruthTensors:
    @pytest.mark.parametrize("lut", all_luts(), ids=lambda lut: lut.name)
    def test_truth_matrix_matches_pass_simulation(self, lut):
        """Each truth-tensor row reproduces the firing passes of one state."""
        matrix = lut_truth_matrix(lut.kind, lut.inplace)
        assert matrix.shape == (8, len(lut.entries))
        for state in range(8):
            carry, b, a = (state >> 2) & 1, (state >> 1) & 1, state & 1
            # Re-simulate and count matches independently.
            state_carry, state_b, state_r = carry, b, 0
            fired = []
            for entry in lut.entries:
                if (state_carry, state_b, a) == entry.search:
                    fired.append(1)
                    if lut.inplace:
                        state_carry, state_b = entry.write
                    else:
                        state_carry, state_r = entry.write
                else:
                    fired.append(0)
            assert list(matrix[state]) == fired
            # And the final state agrees with the ordered pass simulation.
            got_carry, got_result = simulate_lut_passes(lut, carry, b, a)
            assert (got_carry, got_result) == (
                state_carry,
                state_b if lut.inplace else state_r,
            )


class TestOpcodeMatrix:
    """Every opcode/placement combination, field-by-field equivalence."""

    @pytest.mark.parametrize("kind", ["add", "sub"])
    @pytest.mark.parametrize("inplace", [False, True])
    @pytest.mark.parametrize("width", [1, 4, 9])
    def test_arithmetic(self, rng, kind, inplace, width):
        a = ColumnRegion(column=1, width=width)
        b = ColumnRegion(column=2, width=width)
        if inplace:
            dest = b
            opcode = APOpcode.ADD_INPLACE if kind == "add" else APOpcode.SUB_INPLACE
        else:
            dest = ColumnRegion(column=3, width=width)
            opcode = (
                APOpcode.ADD_OUTOFPLACE if kind == "add" else APOpcode.SUB_OUTOFPLACE
            )
        program = single_instruction_program(
            APInstruction(opcode=opcode, dest=dest, src_a=a, src_b=b),
            {"a": a, "b": b},
            {"y": dest},
        )
        inputs = random_inputs(program, 16, rng)
        run_both(program, inputs)

    def test_inplace_add_overwriting_src_a(self, rng):
        """The commutative swap path (dest == src_a) stays equivalent."""
        a = ColumnRegion(column=1, width=6)
        b = ColumnRegion(column=2, width=6)
        program = single_instruction_program(
            APInstruction(opcode=APOpcode.ADD_INPLACE, dest=a, src_a=a, src_b=b),
            {"a": a, "b": b},
            {"y": a},
        )
        run_both(program, random_inputs(program, 16, rng))

    def test_sign_extended_narrow_source(self, rng):
        narrow = ColumnRegion(column=1, width=3)
        wide = ColumnRegion(column=2, width=9)
        dest = ColumnRegion(column=3, width=9)
        program = single_instruction_program(
            APInstruction(
                opcode=APOpcode.SUB_OUTOFPLACE, dest=dest, src_a=narrow, src_b=wide
            ),
            {"a": narrow, "b": wide},
            {"y": dest},
        )
        run_both(program, random_inputs(program, 16, rng))

    def test_multi_destination_write(self, rng):
        a = ColumnRegion(column=1, width=5)
        b = ColumnRegion(column=2, width=5)
        dest = ColumnRegion(column=3, width=6)
        extra = ColumnRegion(column=4, width=6, domain_offset=2)
        program = single_instruction_program(
            APInstruction(
                opcode=APOpcode.ADD_OUTOFPLACE,
                dest=dest,
                src_a=a,
                src_b=b,
                extra_dests=(extra,),
            ),
            {"a": a, "b": b},
            {"y": dest, "y2": extra},
        )
        run_both(program, random_inputs(program, 16, rng))

    def test_narrow_extra_destination_keeps_stale_bits(self, rng):
        """Extra dests narrower than the instruction expose stale-bit rules."""
        a = ColumnRegion(column=1, width=5)
        b = ColumnRegion(column=2, width=5)
        dest = ColumnRegion(column=3, width=9)
        extra = ColumnRegion(column=4, width=3)
        seed_extra = APInstruction(
            opcode=APOpcode.COPY, dest=ColumnRegion(column=4, width=9), src_a=b
        )
        program = APProgram(name="stale", carry_column=0)
        program.input_columns = {"a": a, "b": b}
        program.output_columns = {"y": dest}
        program.append(seed_extra)  # leave stale bits above the extra region
        program.append(
            APInstruction(
                opcode=APOpcode.SUB_OUTOFPLACE,
                dest=dest,
                src_a=a,
                src_b=b,
                extra_dests=(extra,),
            )
        )
        run_both(program, random_inputs(program, 16, rng))

    @pytest.mark.parametrize("widths", [(5, 5), (3, 7), (9, 4)])
    def test_copy(self, rng, widths):
        src_width, dest_width = widths
        src = ColumnRegion(column=1, width=src_width)
        dest = ColumnRegion(column=2, width=dest_width)
        program = single_instruction_program(
            APInstruction(opcode=APOpcode.COPY, dest=dest, src_a=src),
            {"x": src},
            {"y": dest},
        )
        run_both(program, random_inputs(program, 16, rng))

    def test_clear(self, rng):
        region = ColumnRegion(column=1, width=6, domain_offset=1)
        program = single_instruction_program(
            APInstruction(opcode=APOpcode.CLEAR, dest=region),
            {"x": region},
            {"y": region},
        )
        run_both(program, random_inputs(program, 16, rng))

    def test_partial_rows(self, rng):
        a = ColumnRegion(column=1, width=5)
        b = ColumnRegion(column=2, width=5)
        dest = ColumnRegion(column=3, width=6)
        program = single_instruction_program(
            APInstruction(opcode=APOpcode.ADD_OUTOFPLACE, dest=dest, src_a=a, src_b=b),
            {"a": a, "b": b},
            {"y": dest},
        )
        run_both(program, random_inputs(program, 5, rng), rows=16)


class TestFallbackLayouts:
    """Degenerate layouts route through the embedded interpreter untouched."""

    def test_copy_onto_itself(self, rng):
        region = ColumnRegion(column=1, width=5)
        program = single_instruction_program(
            APInstruction(opcode=APOpcode.COPY, dest=region, src_a=region),
            {"x": region},
            {"y": region},
        )
        run_both(program, random_inputs(program, 8, rng))

    def test_wide_words_fall_back(self, rng):
        a = ColumnRegion(column=1, width=62)
        b = ColumnRegion(column=2, width=62)
        dest = ColumnRegion(column=3, width=62)
        program = single_instruction_program(
            APInstruction(opcode=APOpcode.ADD_OUTOFPLACE, dest=dest, src_a=a, src_b=b),
            {"a": a, "b": b},
            {"y": dest},
        )
        inputs = {
            "a": rng.integers(-(2**40), 2**40, 6),
            "b": rng.integers(-(2**40), 2**40, 6),
        }
        run_both(program, inputs, rows=6)


class TestRandomizedPrograms:
    """Fuzz: whole random programs, every observable compared."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_program_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        num_instructions = int(rng.integers(8, 32))
        columns = int(rng.integers(10, 28))
        program = random_program(
            rng, num_instructions=num_instructions, columns=columns, max_width=11
        )
        rows = int(rng.integers(1, 48))
        inputs = random_inputs(program, rows, rng)
        run_both(program, inputs, rows=rows, columns=columns)

    @pytest.mark.parametrize("seed", range(6))
    def test_batched_backend_per_instruction_equivalence(self, seed):
        """The registered ``batched`` backend (per-instruction entry points
        used whenever a wave declines) matches the reference interpreter."""
        rng = np.random.default_rng(1000 + seed)
        program = random_program(rng, num_instructions=16, columns=14, max_width=9)
        rows = int(rng.integers(1, 32))
        inputs = random_inputs(program, rows, rng)
        comparison = compare_backends(
            program, inputs, rows=rows, columns=14, candidate="batched"
        )
        assert comparison.equivalent, comparison.describe()

    def test_vectorized_matches_numpy_semantics(self, rng):
        """End to end: the vectorized AP still computes exact integer math."""
        ap = AssociativeProcessor(rows=32, columns=16, backend="vectorized")
        a = rng.integers(-100, 100, 32)
        b = rng.integers(-100, 100, 32)
        assert np.array_equal(ap.add_vectors(a, b, width=9), a + b)
        assert np.array_equal(ap.sub_vectors(a, b, width=9), a - b)


class TestAcceleratorThreading:
    def test_functional_ap_inherits_backend(self, tiny_architecture):
        from repro.arch.accelerator import Accelerator

        accelerator = Accelerator(config=tiny_architecture, backend="vectorized")
        ap = accelerator.functional_ap((0, 0, 0))
        assert ap.backend.name == "vectorized"

    def test_default_backend_is_the_session_default(self, tiny_architecture):
        from repro.ap.backends import DEFAULT_BACKEND
        from repro.arch.accelerator import Accelerator

        accelerator = Accelerator(config=tiny_architecture)
        ap = accelerator.functional_ap((0, 0, 0))
        assert ap.backend.name == DEFAULT_BACKEND

    def test_env_override_selects_default(self, monkeypatch):
        from repro.ap import backends as backends_module

        monkeypatch.setenv(backends_module.BACKEND_ENV_VARIABLE, "reference")
        assert backends_module._default_backend() == "reference"
        monkeypatch.setenv(backends_module.BACKEND_ENV_VARIABLE, "no-such")
        with pytest.raises(ConfigurationError):
            backends_module._default_backend()
        monkeypatch.delenv(backends_module.BACKEND_ENV_VARIABLE)
        assert backends_module._default_backend() == "vectorized"


class TestCostModelCrosscheck:
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_crosscheck_consistent(self, backend):
        from repro.perf.model import PerformanceModelConfig, crosscheck_cost_model

        result = crosscheck_cost_model(
            config=PerformanceModelConfig(execution_backend=backend)
        )
        assert result.backend == backend
        assert result.consistent

    def test_backends_measure_identical_events(self):
        from repro.perf.model import PerformanceModelConfig, crosscheck_cost_model

        runs = [
            crosscheck_cost_model(
                config=PerformanceModelConfig(execution_backend=backend)
            )
            for backend in available_backends()
        ]
        measured = {
            (run.measured_search_phases, run.measured_write_phases) for run in runs
        }
        assert len(measured) == 1


def per_instance_wave_baseline(
    programs, inputs_per_instance, rows, columns, backend="vectorized"
):
    """Ground truth of one wave: each instance alone on a fresh AP."""
    results = []
    for instance_inputs in inputs_per_instance:
        ap = AssociativeProcessor(rows=rows, columns=columns, backend=backend)
        outputs_list = []
        checksum = 0
        for program, inputs in zip(programs, instance_inputs):
            outputs = ap.run_program(program, inputs, num_rows=rows)
            converted = {}
            for name in sorted(outputs):
                values = np.asarray(outputs[name], dtype=np.int64)
                checksum += int(values.sum())
                converted[name] = values
            outputs_list.append(converted)
        results.append((ap.reset_stats(), outputs_list, checksum))
    return results


def assert_wave_matches_baseline(wave_results, baseline):
    assert len(wave_results) == len(baseline)
    for got, expected in zip(wave_results, baseline):
        got_stats, got_outputs, got_checksum, stacked = got
        expected_stats, expected_outputs, expected_checksum = expected
        assert got_stats == expected_stats
        assert got_checksum == expected_checksum
        assert len(got_outputs) == len(expected_outputs)
        flat_rows = []
        for got_programs, expected_programs in zip(got_outputs, expected_outputs):
            assert sorted(got_programs) == sorted(expected_programs)
            for name in expected_programs:
                assert np.array_equal(got_programs[name], expected_programs[name])
            for name in sorted(got_programs):
                flat_rows.append(np.asarray(got_programs[name], dtype=np.int64))
        # The stacked matrix is the same data in (program order, sorted-name
        # within program) row order - the bulk-reduction contract.
        assert stacked.shape == (len(flat_rows), len(flat_rows[0]) if flat_rows else 0)
        for row, values in zip(stacked, flat_rows):
            assert np.array_equal(row, values)


def add_tile(width, columns=4):
    """One-add tile: ``y = a + b`` at the given operand width."""
    a = ColumnRegion(column=1, width=width)
    b = ColumnRegion(column=2, width=width)
    dest = ColumnRegion(column=3, width=width)
    program = single_instruction_program(
        APInstruction(opcode=APOpcode.ADD_OUTOFPLACE, dest=dest, src_a=a, src_b=b),
        {"a": a, "b": b},
        {"y": dest},
    )
    return [program], columns


class TestWaveExecution:
    """Layer-wave contract: byte-identity to per-instance runs, or decline.

    ``execute_program_wave`` is the mega-kernel entry point the inference
    engine and ``Executor.map_layer`` dispatch whole layers through; every
    test here checks it against instances executed one at a time on a fresh
    AP (the exact semantics of pool-worker dispatch).
    """

    def _tile_inputs(self, programs, rows, instances, rng):
        return [
            [random_inputs(program, rows, rng) for program in programs]
            for _ in range(instances)
        ]

    def test_multi_program_wave_matches_per_instance(self, rng):
        """Several programs back to back, several divergent instances."""
        programs = [
            random_program(rng, num_instructions=10, columns=12, max_width=8,
                           name=f"slice{index}")
            for index in range(3)
        ]
        rows = 9
        inputs = self._tile_inputs(programs, rows, instances=4, rng=rng)
        wave = execute_program_wave(programs, inputs, rows, columns=12)
        if wave is None:
            pytest.skip("fuzzed program drew a shape outside the wave subset")
        assert_wave_matches_baseline(
            wave, per_instance_wave_baseline(programs, inputs, rows, 12)
        )

    def test_fuzzed_waves_accept_or_match(self):
        """Across many seeds the wave either declines or is byte-identical -
        and it must accept a healthy share (the compiler-emitted shapes)."""
        accepted = 0
        for seed in range(10):
            rng = np.random.default_rng(2000 + seed)
            columns = int(rng.integers(8, 20))
            programs = [
                random_program(rng, num_instructions=8, columns=columns,
                               max_width=8, name=f"p{index}")
                for index in range(int(rng.integers(1, 4)))
            ]
            rows = int(rng.integers(1, 24))
            inputs = self._tile_inputs(
                programs, rows, instances=int(rng.integers(1, 4)), rng=rng
            )
            wave = execute_program_wave(programs, inputs, rows, columns=columns)
            if wave is None:
                continue
            accepted += 1
            assert_wave_matches_baseline(
                wave, per_instance_wave_baseline(programs, inputs, rows, columns)
            )
        assert accepted >= 5, f"wave accepted only {accepted}/10 fuzzed tiles"

    @pytest.mark.parametrize("width", [8, 30, 34])
    def test_narrow_and_wide_word_paths(self, rng, width):
        """Both packed-arithmetic dtypes (int32 below 31 bits, int64 above)
        reproduce the interpreter exactly, including near the value bounds."""
        programs, columns = add_tile(width)
        rows = 6
        bound = 2 ** (width - 1) - 1
        inputs = []
        for instance in range(3):
            values_a = rng.integers(-bound, bound, rows)
            values_b = rng.integers(-bound // 2, bound // 2, rows)
            values_a[0], values_b[0] = bound // 2, bound // 2 - 1
            inputs.append([{"a": values_a, "b": values_b}])
        wave = execute_program_wave(programs, inputs, rows, columns)
        assert wave is not None
        assert_wave_matches_baseline(
            wave, per_instance_wave_baseline(programs, inputs, rows, columns)
        )

    def test_per_instance_stats_diverge_with_data(self):
        """Write-phase counters are data-dependent and tracked per instance."""
        programs, columns = add_tile(6)
        rows = 8
        busy = [{"a": np.full(rows, 17), "b": np.full(rows, 13)}]
        idle = [{"a": np.zeros(rows, dtype=np.int64),
                 "b": np.zeros(rows, dtype=np.int64)}]
        wave = execute_program_wave(programs, [busy, idle], rows, columns)
        assert wave is not None
        busy_stats, _, busy_checksum, _ = wave[0]
        idle_stats, _, idle_checksum, _ = wave[1]
        assert busy_stats.write_phases > idle_stats.write_phases
        assert busy_checksum != idle_checksum
        # Data-independent counters stay identical across instances.
        assert busy_stats.search_phases == idle_stats.search_phases

    def test_chunked_wave_byte_identical(self, rng, monkeypatch):
        """Chunking (bounded stacked state) must not change any observable."""
        from repro.ap.backends import batched as batched_module

        programs, columns = add_tile(7)
        rows = 5
        inputs = self._tile_inputs(programs, rows, instances=6, rng=rng)
        whole = execute_program_wave(programs, inputs, rows, columns)
        monkeypatch.setattr(batched_module, "_MAX_WAVE_STATE_BYTES", 1)
        chunked = execute_program_wave(programs, inputs, rows, columns)
        assert whole is not None and chunked is not None
        for left, right in zip(whole, chunked):
            assert left[0] == right[0]
            assert left[2] == right[2]
            assert np.array_equal(left[3], right[3])

    def test_empty_wave_returns_empty(self):
        programs, columns = add_tile(5)
        assert execute_program_wave(programs, [], 4, columns) == []

    def test_declines_degenerate_geometry(self, rng):
        programs, columns = add_tile(5)
        inputs = self._tile_inputs(programs, 4, instances=1, rng=rng)
        assert execute_program_wave(programs, inputs, 0, columns) is None
        assert execute_program_wave(programs, inputs, 4, 0) is None

    def test_declines_carry_column_mismatch(self, rng):
        programs, columns = add_tile(5)
        inputs = self._tile_inputs(programs, 4, instances=1, rng=rng)
        assert (
            execute_program_wave(programs, inputs, 4, columns, carry_column=1)
            is None
        )

    def test_declines_malformed_inputs(self, rng):
        """Wrong-length, out-of-range, missing or miscounted input vectors
        all force the per-instance fallback instead of corrupting the wave."""
        programs, columns = add_tile(5)
        rows = 4
        good = self._tile_inputs(programs, rows, instances=2, rng=rng)

        wrong_length = [list(good[0]), [{**good[1][0], "a": np.zeros(rows + 1)}]]
        assert execute_program_wave(programs, wrong_length, rows, columns) is None

        out_of_range = [list(good[0]), [{**good[1][0], "a": np.full(rows, 2**10)}]]
        assert execute_program_wave(programs, out_of_range, rows, columns) is None

        missing_name = [list(good[0]), [{"a": good[1][0]["a"]}]]
        assert execute_program_wave(programs, missing_name, rows, columns) is None

        miscounted = [list(good[0]), []]
        assert execute_program_wave(programs, miscounted, rows, columns) is None

        non_integer = [list(good[0]), [{**good[1][0], "a": np.zeros(rows) + 0.5}]]
        assert execute_program_wave(programs, non_integer, rows, columns) is None


class TestStagedWaveExecution:
    """Host-staged operand forms: byte-identity to the per-instance dicts.

    The wave-native host dataflow hands ``execute_program_wave`` one
    :class:`StagedWaveInputs` per layer group instead of ``instances``
    payload dicts; both the integer-batch and pre-unpacked bit-plane forms
    must reproduce the legacy form bit for bit, and malformed staging must
    decline (return ``None``) rather than corrupt the wave.
    """

    def _staged_values(self, programs, inputs, rows):
        values = []
        for program_index, _ in enumerate(programs):
            names = inputs[0][program_index].keys()
            values.append(
                {
                    name: np.stack(
                        [
                            np.asarray(
                                instance[program_index][name], dtype=np.int64
                            )
                            for instance in inputs
                        ]
                    )
                    for name in names
                }
            )
        return StagedWaveInputs(len(inputs), rows, values=values)

    def _staged_planes(self, programs, inputs, rows, columns):
        plan = wave_staging_plan(programs, columns)
        assert plan is not None
        load_widths, _ = plan
        planes = []
        for program_index, widths in enumerate(load_widths):
            planes.append(
                {
                    name: unpack_bits(
                        np.stack(
                            [
                                np.asarray(
                                    instance[program_index][name],
                                    dtype=np.int64,
                                )
                                for instance in inputs
                            ]
                        ),
                        width,
                    )
                    for name, width in widths.items()
                }
            )
        return StagedWaveInputs(len(inputs), rows, planes=planes)

    def test_staged_values_match_per_instance(self, rng):
        programs, columns = add_tile(7)
        rows = 6
        inputs = [
            [random_inputs(program, rows, rng) for program in programs]
            for _ in range(4)
        ]
        baseline = execute_program_wave(programs, inputs, rows, columns)
        staged = execute_program_wave(
            programs, self._staged_values(programs, inputs, rows), rows, columns
        )
        assert baseline is not None and staged is not None
        for legacy, wave in zip(baseline, staged):
            assert legacy[0] == wave[0]
            assert legacy[2] == wave[2]
            assert np.array_equal(legacy[3], wave[3])

    def test_staged_planes_match_staged_values(self, rng):
        programs, columns = add_tile(6)
        rows = 5
        inputs = [
            [random_inputs(program, rows, rng) for program in programs]
            for _ in range(3)
        ]
        from_values = execute_program_wave(
            programs, self._staged_values(programs, inputs, rows), rows, columns
        )
        from_planes = execute_program_wave(
            programs,
            self._staged_planes(programs, inputs, rows, columns),
            rows,
            columns,
        )
        assert from_values is not None and from_planes is not None
        for left, right in zip(from_values, from_planes):
            assert left[0] == right[0]
            assert left[2] == right[2]
            assert np.array_equal(left[3], right[3])

    def test_staging_plan_reports_load_widths(self):
        programs, columns = add_tile(7)
        plan = wave_staging_plan(programs, columns)
        assert plan is not None
        load_widths, uniform = plan
        assert load_widths == [{"a": 7, "b": 7}]
        assert uniform == 7

    def test_staging_plan_declines_bad_geometry(self):
        programs, _ = add_tile(7)
        assert wave_staging_plan(programs, 0) is None
        assert wave_staging_plan(programs, 4, carry_column=3) is None

    def test_staged_chunking_byte_identical(self, rng, monkeypatch):
        from repro.ap.backends import batched as batched_module

        programs, columns = add_tile(7)
        rows = 5
        inputs = [
            [random_inputs(program, rows, rng) for program in programs]
            for _ in range(6)
        ]
        staged = self._staged_values(programs, inputs, rows)
        whole = execute_program_wave(programs, staged, rows, columns)
        monkeypatch.setattr(batched_module, "_MAX_WAVE_STATE_BYTES", 1)
        chunked = execute_program_wave(programs, staged, rows, columns)
        assert whole is not None and chunked is not None
        for left, right in zip(whole, chunked):
            assert left[0] == right[0]
            assert left[2] == right[2]
            assert np.array_equal(left[3], right[3])

    def test_staged_malformed_declines(self, rng):
        """Shape, dtype, range and arity mismatches all decline cleanly."""
        programs, columns = add_tile(5)
        rows = 4
        inputs = [
            [random_inputs(program, rows, rng) for program in programs]
            for _ in range(2)
        ]
        good = self._staged_values(programs, inputs, rows)

        bad_shape = StagedWaveInputs(
            2, rows, values=[{**good.values[0], "a": np.zeros((2, rows + 1))}]
        )
        assert execute_program_wave(programs, bad_shape, rows, columns) is None

        out_of_range = StagedWaveInputs(
            2,
            rows,
            values=[{**good.values[0], "a": np.full((2, rows), 2**10)}],
        )
        assert (
            execute_program_wave(programs, out_of_range, rows, columns) is None
        )

        missing = StagedWaveInputs(
            2, rows, values=[{"a": good.values[0]["a"]}]
        )
        assert execute_program_wave(programs, missing, rows, columns) is None

        non_integer = StagedWaveInputs(
            2, rows, values=[{**good.values[0], "a": np.zeros((2, rows)) + 0.5}]
        )
        assert (
            execute_program_wave(programs, non_integer, rows, columns) is None
        )

    def test_staged_requires_exactly_one_form(self):
        with pytest.raises(ValueError):
            StagedWaveInputs(1, 4)
        with pytest.raises(ValueError):
            StagedWaveInputs(1, 4, values=[], planes=[])
