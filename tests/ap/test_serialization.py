"""Tests for AP program serialization."""

import numpy as np
import pytest

from repro.ap.core import AssociativeProcessor
from repro.ap.serialization import (
    instruction_from_dict,
    program_from_dict,
    program_from_json,
    program_to_dict,
    program_to_json,
)
from repro.core.compiler import CompilerConfig, compile_slice
from repro.errors import CompilationError


@pytest.fixture
def compiled_program(paper_eq1_matrix):
    return compile_slice(paper_eq1_matrix, CompilerConfig(activation_bits=4)).program


class TestRoundTrip:
    def test_dict_round_trip_preserves_structure(self, compiled_program):
        restored = program_from_dict(program_to_dict(compiled_program))
        assert restored.name == compiled_program.name
        assert len(restored) == len(compiled_program)
        assert restored.instructions == compiled_program.instructions
        assert restored.input_columns == compiled_program.input_columns
        assert restored.output_columns == compiled_program.output_columns
        assert restored.output_negated == compiled_program.output_negated

    def test_json_round_trip_executes_identically(self, compiled_program, paper_eq1_matrix, rng):
        restored = program_from_json(program_to_json(compiled_program))
        activations = rng.integers(0, 16, size=(6, 10))
        inputs = {name: activations[int(name[1:])] for name in restored.input_columns}
        original_out = AssociativeProcessor(rows=10, columns=32).run_program(
            compiled_program, inputs
        )
        restored_out = AssociativeProcessor(rows=10, columns=32).run_program(restored, inputs)
        for name in original_out:
            assert np.array_equal(original_out[name], restored_out[name])

    def test_json_is_text(self, compiled_program):
        text = program_to_json(compiled_program)
        assert '"instructions"' in text
        assert '"format_version"' in text


class TestErrorHandling:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(CompilationError):
            instruction_from_dict(
                {"opcode": "mul", "dest": {"column": 1, "width": 4, "domain_offset": 0}}
            )

    def test_wrong_version_rejected(self, compiled_program):
        data = program_to_dict(compiled_program)
        data["format_version"] = 99
        with pytest.raises(CompilationError):
            program_from_dict(data)
