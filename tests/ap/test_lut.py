"""Tests for the Table-I lookup tables (experiment E1)."""

import pytest

from repro.ap.lut import (
    LookupTable,
    LUTEntry,
    all_luts,
    get_lut,
    inplace_add_lut,
    inplace_sub_lut,
    outofplace_add_lut,
    outofplace_sub_lut,
    paper_printed_outofplace_add_entries,
    reference_bit_op,
    simulate_lut_passes,
    validate_lut,
)
from repro.errors import SimulationError


class TestReferenceBitOp:
    @pytest.mark.parametrize(
        "a,b,carry,expected",
        [
            (0, 0, 0, (0, 0)),
            (1, 0, 0, (1, 0)),
            (1, 1, 0, (0, 1)),
            (1, 1, 1, (1, 1)),
        ],
    )
    def test_full_adder(self, a, b, carry, expected):
        assert reference_bit_op("add", a, b, carry) == expected

    @pytest.mark.parametrize(
        "a,b,borrow,expected",
        [
            (0, 0, 0, (0, 0)),
            (1, 0, 0, (1, 1)),  # 0 - 1 = -1 -> bit 1, borrow 1
            (0, 1, 0, (1, 0)),
            (1, 1, 1, (1, 1)),  # 1 - 1 - 1 = -1
        ],
    )
    def test_full_subtractor(self, a, b, borrow, expected):
        assert reference_bit_op("sub", a, b, borrow) == expected

    def test_unknown_kind(self):
        with pytest.raises(SimulationError):
            reference_bit_op("mul", 0, 0, 0)


class TestTableOneStructure:
    """Cycle counts of Table I: 8 cycles in-place, 10 cycles out-of-place."""

    def test_inplace_add_has_four_passes(self):
        assert inplace_add_lut().passes_per_bit == 4
        assert inplace_add_lut().phases_per_bit == 8

    def test_inplace_sub_has_four_passes(self):
        assert inplace_sub_lut().passes_per_bit == 4
        assert inplace_sub_lut().phases_per_bit == 8

    def test_outofplace_add_has_five_passes(self):
        assert outofplace_add_lut().passes_per_bit == 5
        assert outofplace_add_lut().phases_per_bit == 10

    def test_outofplace_sub_has_five_passes(self):
        assert outofplace_sub_lut().passes_per_bit == 5
        assert outofplace_sub_lut().phases_per_bit == 10

    def test_write_roles(self):
        assert inplace_add_lut().write_roles == ("carry", "b")
        assert outofplace_add_lut().write_roles == ("carry", "r")

    def test_inplace_add_pass_order_matches_paper(self):
        """The printed order of the in-place adder: (0,1,1), (0,0,1), (1,0,0), (1,1,0)."""
        searches = [entry.search for entry in inplace_add_lut().entries]
        assert searches == [(0, 1, 1), (0, 0, 1), (1, 0, 0), (1, 1, 0)]

    def test_inplace_sub_pass_order_matches_paper(self):
        searches = [entry.search for entry in inplace_sub_lut().entries]
        assert searches == [(0, 0, 1), (0, 1, 1), (1, 1, 0), (1, 0, 0)]


class TestLUTCorrectness:
    @pytest.mark.parametrize("lut", all_luts(), ids=lambda lut: lut.name)
    def test_exhaustive_validation(self, lut):
        validate_lut(lut)

    @pytest.mark.parametrize("kind", ["add", "sub"])
    @pytest.mark.parametrize("inplace", [True, False])
    def test_get_lut_round_trip(self, kind, inplace):
        lut = get_lut(kind, inplace)
        assert lut.kind == kind
        assert lut.inplace == inplace

    def test_get_lut_unknown(self):
        with pytest.raises(SimulationError):
            get_lut("xor", True)

    def test_simulate_passes_produces_reference(self):
        lut = inplace_add_lut()
        for carry in (0, 1):
            for b in (0, 1):
                for a in (0, 1):
                    expected_result, expected_carry = reference_bit_op("add", a, b, carry)
                    got_carry, got_result = simulate_lut_passes(lut, carry, b, a)
                    assert (got_carry, got_result) == (expected_carry, expected_result)

    def test_paper_printed_outofplace_add_is_inconsistent(self):
        """Documents the transcription artifact in the printed out-of-place adder.

        The printed pass set misses the carry flip of (Cr,B,A)=(0,1,1); the
        corrected LUT used by the library fixes it at the same 10-cycle cost.
        """
        printed = LookupTable(
            name="add-outofplace-printed",
            kind="add",
            inplace=False,
            entries=paper_printed_outofplace_add_entries(),
        )
        with pytest.raises(SimulationError):
            validate_lut(printed)

    def test_wrong_pass_order_detected(self):
        """Swapping passes so a rewritten row is re-matched must fail validation."""
        entries = (
            LUTEntry(search=(0, 1, 1), write=(1, 0)),
            LUTEntry(search=(0, 0, 1), write=(0, 1)),
            LUTEntry(search=(1, 0, 0), write=(0, 1)),
            LUTEntry(search=(1, 1, 1), write=(1, 1)),
            LUTEntry(search=(0, 1, 0), write=(0, 1)),
        )
        broken = LookupTable(name="broken", kind="add", inplace=False, entries=entries)
        with pytest.raises(SimulationError):
            validate_lut(broken)


class TestEntryValidation:
    def test_bad_search_pattern(self):
        with pytest.raises(SimulationError):
            LUTEntry(search=(0, 1), write=(0, 1))

    def test_bad_write_pattern(self):
        with pytest.raises(SimulationError):
            LUTEntry(search=(0, 1, 0), write=(2, 0))

    def test_empty_lut_rejected(self):
        with pytest.raises(SimulationError):
            LookupTable(name="empty", kind="add", inplace=True, entries=())

    def test_bad_kind_rejected(self):
        with pytest.raises(SimulationError):
            LookupTable(
                name="bad", kind="mul", inplace=True,
                entries=(LUTEntry((0, 0, 1), (0, 1)),),
            )
