"""Functional tests of the associative processor (bit-exact arithmetic)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ap.core import AssociativeProcessor
from repro.ap.isa import APInstruction, APOpcode, APProgram, ColumnRegion
from repro.errors import CapacityError, CompilationError, SimulationError


def make_ap(rows=16, columns=16):
    return AssociativeProcessor(rows=rows, columns=columns)


class TestVectorArithmetic:
    @pytest.mark.parametrize("inplace", [False, True])
    def test_add_matches_numpy(self, rng, inplace):
        ap = make_ap()
        a = rng.integers(-50, 50, 16)
        b = rng.integers(-50, 50, 16)
        result = ap.add_vectors(a, b, width=8, inplace=inplace)
        assert np.array_equal(result, a + b)

    @pytest.mark.parametrize("inplace", [False, True])
    def test_sub_matches_numpy(self, rng, inplace):
        ap = make_ap()
        a = rng.integers(-50, 50, 16)
        b = rng.integers(-50, 50, 16)
        result = ap.sub_vectors(a, b, width=8, inplace=inplace)
        assert np.array_equal(result, a - b)

    def test_unsigned_inputs(self):
        ap = make_ap()
        a = np.arange(16)
        b = np.arange(16)[::-1].copy()
        assert np.array_equal(ap.add_vectors(a, b, width=6), a + b)

    def test_mismatched_lengths_rejected(self):
        ap = make_ap()
        with pytest.raises(SimulationError):
            ap.add_vectors([1, 2, 3], [1, 2], width=4)

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(
            st.tuples(
                st.integers(min_value=-100, max_value=100),
                st.integers(min_value=-100, max_value=100),
            ),
            min_size=1,
            max_size=8,
        ),
        inplace=st.booleans(),
        kind=st.sampled_from(["add", "sub"]),
    )
    def test_property_bit_exact(self, values, inplace, kind):
        """The AP's bit-serial LUT arithmetic equals two's-complement integer math."""
        a = np.array([v[0] for v in values])
        b = np.array([v[1] for v in values])
        ap = make_ap(rows=8, columns=8)
        if kind == "add":
            result = ap.add_vectors(a, b, width=9, inplace=inplace)
            assert np.array_equal(result, a + b)
        else:
            result = ap.sub_vectors(a, b, width=9, inplace=inplace)
            assert np.array_equal(result, a - b)


class TestSignExtension:
    def test_narrow_source_sign_extended(self):
        """A 4-bit negative source consumed by an 8-bit add must sign-extend."""
        ap = make_ap()
        narrow = ColumnRegion(column=1, width=4)
        wide = ColumnRegion(column=2, width=8)
        dest = ColumnRegion(column=3, width=8)
        program = APProgram(name="signext")
        program.input_columns = {"narrow": narrow, "wide": wide}
        program.output_columns = {"out": dest}
        program.append(
            APInstruction(
                opcode=APOpcode.ADD_OUTOFPLACE, dest=dest, src_a=narrow, src_b=wide
            )
        )
        narrow_values = [-8, -1, 3, 7]
        wide_values = [100, -100, 50, -50]
        outputs = ap.run_program(
            program, {"narrow": narrow_values, "wide": wide_values}
        )
        assert list(outputs["out"]) == [92, -101, 53, -43]


class TestProgramExecution:
    def _single_add_program(self, negate=False):
        a = ColumnRegion(column=1, width=5)
        b = ColumnRegion(column=2, width=5)
        dest = ColumnRegion(column=3, width=6)
        program = APProgram(name="single")
        program.input_columns = {"a": a, "b": b}
        program.output_columns = {"y": dest}
        program.output_negated = {"y": negate}
        program.append(
            APInstruction(opcode=APOpcode.ADD_OUTOFPLACE, dest=dest, src_a=a, src_b=b)
        )
        return program

    def test_negated_output_flag(self):
        ap = make_ap()
        program = self._single_add_program(negate=True)
        outputs = ap.run_program(program, {"a": [3, 4], "b": [5, 6]})
        assert list(outputs["y"]) == [-8, -10]

    def test_missing_input_rejected(self):
        ap = make_ap()
        program = self._single_add_program()
        with pytest.raises(SimulationError):
            ap.run_program(program, {"a": [1, 2]})

    def test_wrong_length_input_rejected(self):
        ap = make_ap()
        program = self._single_add_program()
        with pytest.raises(SimulationError):
            ap.run_program(program, {"a": [1, 2], "b": [1]})

    def test_too_many_rows_rejected(self):
        ap = make_ap(rows=4)
        program = self._single_add_program()
        with pytest.raises(CapacityError):
            ap.run_program(program, {"a": [1] * 5, "b": [2] * 5})

    def test_partial_rows_leave_rest_untouched(self):
        ap = make_ap(rows=8)
        program = self._single_add_program()
        outputs = ap.run_program(program, {"a": [1, 2, 3], "b": [4, 5, 6]})
        assert list(outputs["y"]) == [5, 7, 9]
        assert len(outputs["y"]) == 3

    def test_empty_inputs_rejected(self):
        ap = make_ap()
        program = self._single_add_program()
        with pytest.raises(SimulationError):
            ap.run_program(program, {})

    def test_stats_accumulate(self):
        ap = make_ap()
        program = self._single_add_program()
        ap.run_program(program, {"a": [1, 2], "b": [3, 4]})
        stats = ap.stats
        assert stats.search_phases > 0
        assert stats.write_phases > 0
        assert stats.loaded_bits == 2 * 5 * 2


class TestCopyAndClear:
    def test_copy_instruction(self):
        ap = make_ap()
        src = ColumnRegion(column=1, width=5)
        dst = ColumnRegion(column=2, width=5)
        program = APProgram(name="copy")
        program.input_columns = {"src": src}
        program.output_columns = {"dst": dst}
        program.append(APInstruction(opcode=APOpcode.COPY, dest=dst, src_a=src))
        outputs = ap.run_program(program, {"src": [-7, 0, 9]})
        assert list(outputs["dst"]) == [-7, 0, 9]

    def test_clear_instruction(self):
        ap = make_ap()
        src = ColumnRegion(column=1, width=4)
        program = APProgram(name="clear")
        program.input_columns = {"src": src}
        program.output_columns = {"src": src}
        program.append(APInstruction(opcode=APOpcode.CLEAR, dest=src))
        outputs = ap.run_program(program, {"src": [3, -2, 5]})
        assert list(outputs["src"]) == [0, 0, 0]


class TestErrorCases:
    def test_same_source_columns_rejected(self):
        ap = make_ap()
        a = ColumnRegion(column=1, width=4)
        dest = ColumnRegion(column=3, width=5)
        instruction = APInstruction(
            opcode=APOpcode.ADD_OUTOFPLACE, dest=dest, src_a=a, src_b=a
        )
        with pytest.raises(CompilationError):
            ap.execute(instruction)

    def test_out_of_place_dest_overlapping_source_rejected(self):
        ap = make_ap()
        a = ColumnRegion(column=1, width=4)
        b = ColumnRegion(column=2, width=4)
        dest = ColumnRegion(column=2, width=5)
        instruction = APInstruction(
            opcode=APOpcode.ADD_OUTOFPLACE, dest=dest, src_a=a, src_b=b
        )
        with pytest.raises(CompilationError):
            ap.execute(instruction)

    def test_invalid_carry_column(self):
        with pytest.raises(CapacityError):
            AssociativeProcessor(rows=4, columns=4, carry_column=10)


class TestMultiDestination:
    def test_out_of_place_add_with_extra_destination(self):
        """Multi-destination writes give a free copy of the result (Sec. IV-C)."""
        ap = make_ap()
        a = ColumnRegion(column=1, width=5)
        b = ColumnRegion(column=2, width=5)
        dest = ColumnRegion(column=3, width=6)
        extra = ColumnRegion(column=4, width=6)
        program = APProgram(name="multidest")
        program.input_columns = {"a": a, "b": b}
        program.output_columns = {"y": dest, "y_copy": extra}
        program.append(
            APInstruction(
                opcode=APOpcode.ADD_OUTOFPLACE,
                dest=dest,
                src_a=a,
                src_b=b,
                extra_dests=(extra,),
            )
        )
        outputs = ap.run_program(program, {"a": [3, -4, 10], "b": [8, 2, -15]})
        assert list(outputs["y"]) == [11, -2, -5]
        assert list(outputs["y_copy"]) == [11, -2, -5]
