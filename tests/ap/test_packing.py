"""Unit tests of the shared word <-> bit-plane conversion helpers."""

import numpy as np
import pytest

from repro.ap.backends.packing import bit_shifts, pack_planes, pow2, unpack_bits


class TestBases:
    def test_bit_shifts_and_pow2(self):
        assert np.array_equal(bit_shifts(4), [0, 1, 2, 3])
        assert np.array_equal(pow2(4), [1, 2, 4, 8])
        assert pow2(64 - 1).dtype == np.int64

    def test_cached_instances_are_reused(self):
        assert bit_shifts(6) is bit_shifts(6)
        assert pow2(6) is pow2(6)


class TestUnpackBits:
    @pytest.mark.parametrize("width", [1, 5, 8, 31, 63])
    def test_roundtrip_signed(self, width):
        rng = np.random.default_rng(width)
        low = -(2 ** (width - 1))
        high = 2 ** (width - 1)
        values = rng.integers(low, high, size=(3, 7), dtype=np.int64)
        values.flat[0] = low
        values.flat[-1] = high - 1
        planes = unpack_bits(values, width)
        assert planes.dtype == np.uint8
        assert planes.shape == values.shape + (width,)
        assert np.array_equal(pack_planes(planes), values)

    def test_roundtrip_unsigned(self):
        values = np.arange(16, dtype=np.int64)
        planes = unpack_bits(values, 4)
        assert np.array_equal(pack_planes(planes, signed=False), values)

    def test_negative_words_sign_extend(self):
        """An arithmetic shift replicates the sign bit above the magnitude,
        so a width-6 unpack of -1 is all ones."""
        planes = unpack_bits(np.array([-1]), 6)
        assert np.array_equal(planes[0], np.ones(6, dtype=np.uint8))

    def test_prefix_planes_are_width_independent(self):
        """Bit k of a word does not depend on the unpack width: a narrow
        load may slice the first planes of a wider unpack (the shared
        max-width staging trick)."""
        values = np.array([-8, -1, 0, 3, 7], dtype=np.int64)
        wide = unpack_bits(values, 9)
        for width in (4, 6, 9):
            assert np.array_equal(unpack_bits(values, width), wide[..., :width])

    def test_out_parameter_writes_in_place(self):
        values = np.array([[5, -3], [0, 2]], dtype=np.int64)
        out = np.empty((2, 2, 4), dtype=np.uint8)
        returned = unpack_bits(values, 4, out=out)
        assert returned is out
        assert np.array_equal(out, unpack_bits(values, 4))

    def test_out_accepts_transposed_views(self):
        """The host stages planes through strided views (bit-major layout);
        writing through a transpose must land the same bits."""
        values = np.arange(-4, 4, dtype=np.int64).reshape(2, 4)
        backing = np.empty((3, 2, 4), dtype=np.uint8)
        unpack_bits(values, 3, out=backing.transpose(1, 2, 0))
        assert np.array_equal(
            backing.transpose(1, 2, 0), unpack_bits(values, 3)
        )


class TestPackPlanes:
    def test_msb_weight_is_negative_when_signed(self):
        planes = np.zeros((1, 4), dtype=np.uint8)
        planes[0, 3] = 1
        assert pack_planes(planes)[0] == -8
        assert pack_planes(planes, signed=False)[0] == 8
