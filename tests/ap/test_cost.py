"""Tests for the analytical per-instruction cost model."""

import numpy as np
import pytest

from repro.ap.core import AssociativeProcessor
from repro.ap.cost import InstructionCost, instruction_cost, program_cost
from repro.ap.isa import APInstruction, APOpcode, APProgram, ColumnRegion
from repro.errors import ConfigurationError
from repro.rtm.timing import RTMTechnology


def add_instruction(width=6, inplace=False, extra=0):
    a = ColumnRegion(column=1, width=width)
    b = ColumnRegion(column=2, width=width)
    if inplace:
        return APInstruction(opcode=APOpcode.ADD_INPLACE, dest=b, src_a=a, src_b=b)
    dest = ColumnRegion(column=3, width=width)
    extras = tuple(ColumnRegion(column=4 + i, width=width) for i in range(extra))
    return APInstruction(
        opcode=APOpcode.ADD_OUTOFPLACE, dest=dest, src_a=a, src_b=b, extra_dests=extras
    )


class TestInstructionCost:
    def test_inplace_phase_count_matches_table1(self):
        cost = instruction_cost(add_instruction(width=6, inplace=True), rows=10)
        # 4 passes/bit * 6 bits searches, same number of writes plus carry clear.
        assert cost.search_phases == 24
        assert cost.write_phases == 25
        assert cost.total_phases == 49

    def test_outofplace_phase_count_matches_table1(self):
        cost = instruction_cost(add_instruction(width=6, inplace=False), rows=10)
        assert cost.search_phases == 30
        assert cost.write_phases == 31

    def test_searched_bits_scale_with_rows(self):
        small = instruction_cost(add_instruction(), rows=10)
        large = instruction_cost(add_instruction(), rows=100)
        assert large.searched_bits == pytest.approx(small.searched_bits * 10)

    def test_extra_destinations_increase_written_bits_only(self):
        base = instruction_cost(add_instruction(extra=0), rows=10)
        multi = instruction_cost(add_instruction(extra=2), rows=10)
        assert multi.total_phases == base.total_phases
        assert multi.written_bits > base.written_bits

    def test_copy_cost(self):
        src = ColumnRegion(column=1, width=4)
        dst = ColumnRegion(column=2, width=4)
        instr = APInstruction(opcode=APOpcode.COPY, dest=dst, src_a=src)
        cost = instruction_cost(instr, rows=8)
        assert cost.search_phases == 8
        assert cost.write_phases == 8

    def test_clear_cost(self):
        instr = APInstruction(opcode=APOpcode.CLEAR, dest=ColumnRegion(column=2, width=4))
        cost = instruction_cost(instr, rows=8)
        assert cost.search_phases == 0
        assert cost.write_phases == 4
        assert cost.written_bits == pytest.approx(32)

    def test_invalid_rows(self):
        with pytest.raises(ConfigurationError):
            instruction_cost(add_instruction(), rows=0)

    def test_invalid_match_probability(self):
        with pytest.raises(ConfigurationError):
            instruction_cost(add_instruction(), rows=4, match_probability=2.0)

    def test_energy_and_latency_positive(self):
        technology = RTMTechnology()
        cost = instruction_cost(add_instruction(), rows=16)
        assert cost.energy_fj(technology) > 0
        assert cost.latency_ns(technology) > 0

    def test_inplace_cheaper_than_outofplace(self):
        technology = RTMTechnology()
        inplace = instruction_cost(add_instruction(inplace=True), rows=16)
        outofplace = instruction_cost(add_instruction(inplace=False), rows=16)
        assert inplace.latency_ns(technology) < outofplace.latency_ns(technology)
        assert inplace.energy_fj(technology) < outofplace.energy_fj(technology)

    def test_merge_and_scale(self):
        cost = instruction_cost(add_instruction(), rows=4)
        doubled = cost.merge(cost)
        assert doubled.search_phases == 2 * cost.search_phases
        scaled = cost.scaled(3)
        assert scaled.search_phases == 3 * cost.search_phases


class TestProgramCost:
    def test_program_cost_sums_instructions(self):
        program = APProgram()
        program.append(add_instruction(width=4))
        program.append(add_instruction(width=4, inplace=True))
        total = program_cost(program, rows=8)
        parts = instruction_cost(add_instruction(width=4), 8).merge(
            instruction_cost(add_instruction(width=4, inplace=True), 8)
        )
        assert total.total_phases == parts.total_phases

    def test_phase_count_matches_functional_simulator(self, rng):
        """The analytical phase count must exactly match the functional AP."""
        ap = AssociativeProcessor(rows=8, columns=8)
        a = rng.integers(-10, 10, 8)
        b = rng.integers(-10, 10, 8)
        ap.add_vectors(a, b, width=6, inplace=True)
        functional = ap.stats
        analytical = instruction_cost(add_instruction(width=6, inplace=True), rows=8)
        assert functional.search_phases == analytical.search_phases
        # Write phases differ only by passes that matched no row at all, so
        # the analytical count is an upper bound within the pass count.
        assert functional.write_phases <= analytical.write_phases
        assert functional.write_phases >= analytical.write_phases - 24
