"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest


def pytest_collection_modifyitems(config, items):
    """Skip ``full_width`` runs unless explicitly requested.

    Full-channel-width model tests take minutes (the ResNet-18 plan/compile
    alone is ~3 minutes on one core); ``REPRO_FULL_WIDTH=1`` opts a run in.
    """
    if os.environ.get("REPRO_FULL_WIDTH", "").strip():
        return
    skip_full = pytest.mark.skip(
        reason="full-width model run: set REPRO_FULL_WIDTH=1 to include"
    )
    for item in items:
        if "full_width" in item.keywords:
            item.add_marker(skip_full)

from repro.arch.config import APConfig, ArchitectureConfig
from repro.nn.stats import ConvLayerSpec
from repro.nn.ternary import synthetic_ternary_weights
from repro.rtm.timing import RTMTechnology


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for the tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def paper_eq1_matrix() -> np.ndarray:
    """The 6x6 ternary matrix of the paper's Eq. 1 (with the x8 sign fixed)."""
    return np.array(
        [
            [1, -1, 0, 1, 0, -1],
            [0, 0, -1, 1, 0, -1],
            [0, 0, 0, -1, 0, 1],
            [0, -1, 0, -1, 0, 1],
            [1, -1, 0, -1, 0, 0],
            [1, -1, -1, 1, 0, -1],
        ],
        dtype=np.int8,
    )


@pytest.fixture
def small_conv_spec(rng) -> ConvLayerSpec:
    """A small ternary convolution layer (8 filters, 4 channels, 3x3, 8x8 input)."""
    weights = synthetic_ternary_weights((8, 4, 3, 3), sparsity=0.6, rng=rng)
    return ConvLayerSpec(
        name="small_conv",
        weights=weights,
        input_height=8,
        input_width=8,
        stride=1,
        padding=1,
    )


@pytest.fixture
def tiny_architecture() -> ArchitectureConfig:
    """A small architecture that keeps functional tests fast."""
    return ArchitectureConfig(
        ap=APConfig(rows=64, columns=64, reserved_columns=2),
        aps_per_tile=2,
        tiles_per_bank=2,
        num_banks=1,
        technology=RTMTechnology(domains_per_nanowire=64),
        activation_bits=4,
    )
