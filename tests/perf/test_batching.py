"""Tests for batched evaluation (the paper's "multiple images per layer" idea)."""

import pytest

from repro.core.compiler import CompilerConfig, compile_model
from repro.errors import ConfigurationError
from repro.nn.stats import ConvLayerSpec
from repro.nn.ternary import synthetic_ternary_weights
from repro.perf.model import PerformanceModelConfig, evaluate_model


@pytest.fixture(scope="module")
def deep_layer_model():
    """A 'deep-layer-like' model: many channels, few output positions."""
    specs = [
        ConvLayerSpec(
            "deep",
            synthetic_ternary_weights((64, 64, 3, 3), 0.7, rng=0),
            7, 7, 1, 1,
        )
    ]
    return compile_model(specs, CompilerConfig(enable_cse=True, activation_bits=4), name="deep")


class TestBatching:
    def test_invalid_batch_rejected(self, deep_layer_model):
        with pytest.raises(ConfigurationError):
            evaluate_model(deep_layer_model, config=PerformanceModelConfig(batch_size=0))

    def test_batch_one_matches_default(self, deep_layer_model):
        default = evaluate_model(deep_layer_model)
        explicit = evaluate_model(deep_layer_model, config=PerformanceModelConfig(batch_size=1))
        assert default.energy_uj == pytest.approx(explicit.energy_uj)
        assert default.latency_ms == pytest.approx(explicit.latency_ms)

    def test_batching_amortizes_latency_per_image(self, deep_layer_model):
        """Filling the idle CAM rows of a row-starved layer improves throughput."""
        single = evaluate_model(deep_layer_model, config=PerformanceModelConfig(batch_size=1))
        batched = evaluate_model(deep_layer_model, config=PerformanceModelConfig(batch_size=4))
        assert batched.batch_size == 4
        assert batched.latency_per_image_ms < single.latency_per_image_ms
        # Energy per image stays in the same range (same work per image).
        assert batched.energy_per_image_uj == pytest.approx(single.energy_per_image_uj, rel=0.2)

    def test_batch_energy_scales_with_images(self, deep_layer_model):
        single = evaluate_model(deep_layer_model, config=PerformanceModelConfig(batch_size=1))
        batched = evaluate_model(deep_layer_model, config=PerformanceModelConfig(batch_size=4))
        assert batched.energy_uj > 2.5 * single.energy_uj

    def test_per_image_properties_consistent(self, deep_layer_model):
        batched = evaluate_model(deep_layer_model, config=PerformanceModelConfig(batch_size=2))
        assert batched.energy_per_image_uj == pytest.approx(batched.energy_uj / 2)
        assert batched.latency_per_image_ms == pytest.approx(batched.latency_ms / 2)
