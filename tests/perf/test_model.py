"""Tests for the analytical RTM-AP performance model."""

import pytest

from repro.arch.config import ArchitectureConfig
from repro.core.compiler import CompilerConfig, compile_model
from repro.errors import ConfigurationError
from repro.nn.stats import ConvLayerSpec
from repro.nn.ternary import synthetic_ternary_weights
from repro.perf.model import PerformanceModelConfig, evaluate_model


def make_specs(seed=0):
    return [
        ConvLayerSpec(
            "conv1", synthetic_ternary_weights((16, 3, 3, 3), 0.5, rng=seed), 16, 16, 1, 1
        ),
        ConvLayerSpec(
            "conv2",
            synthetic_ternary_weights((32, 16, 3, 3), 0.6, rng=seed + 1),
            16, 16, 2, 1,
        ),
        ConvLayerSpec(
            "conv3",
            synthetic_ternary_weights((64, 32, 3, 3), 0.7, rng=seed + 2),
            8, 8, 1, 1,
        ),
    ]


@pytest.fixture(scope="module")
def compiled_pair():
    specs = make_specs()
    cse = compile_model(specs, CompilerConfig(enable_cse=True, activation_bits=4), name="m")
    unroll = compile_model(specs, CompilerConfig(enable_cse=False, activation_bits=4), name="m")
    return cse, unroll


class TestEvaluateModel:
    def test_positive_energy_and_latency(self, compiled_pair):
        performance = evaluate_model(compiled_pair[0])
        assert performance.energy_uj > 0
        assert performance.latency_ms > 0
        assert performance.total_ops == compiled_pair[0].total_ops

    def test_layer_records_cover_all_layers(self, compiled_pair):
        performance = evaluate_model(compiled_pair[0])
        assert [layer.name for layer in performance.layers] == ["conv1", "conv2", "conv3"]
        assert performance.layer_by_name("conv2").energy_uj > 0
        with pytest.raises(ConfigurationError):
            performance.layer_by_name("missing")

    def test_cse_saves_energy_and_latency(self, compiled_pair):
        cse, unroll = compiled_pair
        cse_perf = evaluate_model(cse)
        unroll_perf = evaluate_model(unroll)
        assert cse_perf.energy_uj < unroll_perf.energy_uj
        assert cse_perf.latency_ms <= unroll_perf.latency_ms * 1.01

    def test_energy_grows_with_activation_bits(self):
        specs = make_specs()
        perf4 = evaluate_model(
            compile_model(specs, CompilerConfig(True, activation_bits=4), name="m")
        )
        perf8 = evaluate_model(
            compile_model(specs, CompilerConfig(True, activation_bits=8), name="m")
        )
        assert perf8.energy_uj > perf4.energy_uj

    def test_component_breakdown_sums_to_total(self, compiled_pair):
        performance = evaluate_model(compiled_pair[0])
        components = performance.energy.as_uj_dict()
        assert sum(components.values()) == pytest.approx(performance.energy_uj, rel=1e-9)

    def test_movement_fraction_is_small(self, compiled_pair):
        """Experiment E6: partial-result movement is a few percent of energy."""
        performance = evaluate_model(compiled_pair[0])
        assert performance.movement_fraction < 0.15

    def test_energy_delay_product(self, compiled_pair):
        performance = evaluate_model(compiled_pair[0])
        assert performance.energy_delay_product == pytest.approx(
            performance.energy_uj * performance.latency_ms
        )

    def test_arrays_used_reported(self, compiled_pair):
        performance = evaluate_model(compiled_pair[0])
        assert performance.arrays_used >= 1


class TestPerformanceModelConfig:
    def test_disable_input_load_reduces_movement(self, compiled_pair):
        with_load = evaluate_model(
            compiled_pair[0], config=PerformanceModelConfig(include_input_load=True)
        )
        without_load = evaluate_model(
            compiled_pair[0], config=PerformanceModelConfig(include_input_load=False)
        )
        assert without_load.energy.movement_fj <= with_load.energy.movement_fj

    def test_disable_buffer_traffic_reduces_peripherals(self, compiled_pair):
        with_buffers = evaluate_model(
            compiled_pair[0], config=PerformanceModelConfig(include_buffer_traffic=True)
        )
        without_buffers = evaluate_model(
            compiled_pair[0], config=PerformanceModelConfig(include_buffer_traffic=False)
        )
        assert without_buffers.energy.peripherals_fj < with_buffers.energy.peripherals_fj

    def test_output_parallelism_reduces_latency(self, compiled_pair):
        parallel = evaluate_model(
            compiled_pair[0],
            config=PerformanceModelConfig(output_channel_parallelism=True, available_aps=16),
        )
        serial = evaluate_model(
            compiled_pair[0],
            config=PerformanceModelConfig(output_channel_parallelism=False, available_aps=16),
        )
        assert parallel.latency_ms <= serial.latency_ms
        # Energy is not reduced by parallelism (same work).
        assert parallel.energy_uj >= serial.energy_uj * 0.99

    def test_explicit_ap_budget(self, compiled_pair):
        performance = evaluate_model(
            compiled_pair[0], config=PerformanceModelConfig(available_aps=2)
        )
        assert performance.allocation.available_aps == 2
