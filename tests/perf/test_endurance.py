"""Tests for the endurance / lifetime report (experiment E7)."""

import pytest

from repro.arch.config import ArchitectureConfig
from repro.core.compiler import CompilerConfig, compile_model
from repro.nn.stats import ConvLayerSpec
from repro.nn.ternary import synthetic_ternary_weights
from repro.perf.endurance import endurance_report
from repro.perf.model import evaluate_model


class TestEnduranceReport:
    def test_paper_style_lifetime_about_31_years(self):
        """Sec. V-C: the idealised analysis yields a ~31-year lifetime."""
        report = endurance_report()
        assert 20.0 < report.paper_style_years < 45.0
        assert report.workload is None

    def test_workload_lifetime_at_least_paper_style(self):
        specs = [
            ConvLayerSpec(
                "conv", synthetic_ternary_weights((16, 8, 3, 3), 0.5, rng=0), 16, 16, 1, 1
            )
        ]
        compiled = compile_model(specs, CompilerConfig(), name="m")
        performance = evaluate_model(compiled)
        report = endurance_report(performance=performance)
        assert report.workload_years is not None
        # A real workload cannot stress a column faster than back-to-back ops.
        assert report.workload_years >= report.paper_style_years * 0.99

    def test_architecture_columns_matter(self):
        small = endurance_report(
            architecture=ArchitectureConfig(), writes_per_operation=2.0
        )
        # Fewer columns sharing the load -> shorter lifetime.
        from repro.arch.config import APConfig

        narrow = endurance_report(
            architecture=ArchitectureConfig(ap=APConfig(rows=256, columns=64))
        )
        assert narrow.paper_style_years < small.paper_style_years
