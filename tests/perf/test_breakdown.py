"""Tests for energy/latency breakdown records."""

import pytest

from repro.perf.breakdown import EnergyBreakdown, LatencyBreakdown


class TestEnergyBreakdown:
    def test_total_and_units(self):
        energy = EnergyBreakdown(dfg_fj=1e9, accumulation_fj=2e9, peripherals_fj=0.5e9, movement_fj=0.5e9)
        assert energy.total_fj == pytest.approx(4e9)
        assert energy.total_uj == pytest.approx(4.0)

    def test_movement_fraction(self):
        energy = EnergyBreakdown(dfg_fj=90.0, movement_fj=10.0)
        assert energy.movement_fraction == pytest.approx(0.1)

    def test_zero_energy_fraction(self):
        assert EnergyBreakdown().movement_fraction == 0.0

    def test_merge(self):
        a = EnergyBreakdown(dfg_fj=1.0, accumulation_fj=2.0)
        b = EnergyBreakdown(dfg_fj=3.0, movement_fj=4.0)
        merged = a.merge(b)
        assert merged.dfg_fj == 4.0
        assert merged.accumulation_fj == 2.0
        assert merged.movement_fj == 4.0

    def test_uj_dict_keys(self):
        keys = set(EnergyBreakdown().as_uj_dict())
        assert keys == {"dfg", "accumulation", "peripherals", "movement"}


class TestLatencyBreakdown:
    def test_total_and_units(self):
        latency = LatencyBreakdown(dfg_ns=1e6, accumulation_ns=2e6, movement_ns=0.0)
        assert latency.total_ns == pytest.approx(3e6)
        assert latency.total_ms == pytest.approx(3.0)

    def test_merge(self):
        merged = LatencyBreakdown(dfg_ns=1.0).merge(LatencyBreakdown(accumulation_ns=2.0))
        assert merged.total_ns == pytest.approx(3.0)

    def test_ms_dict_keys(self):
        assert set(LatencyBreakdown().as_ms_dict()) == {"dfg", "accumulation", "movement"}
