"""Tests for the CAM array primitives (masked search, tagged write)."""

import numpy as np
import pytest

from repro.cam.array import CAMArray
from repro.errors import CapacityError, SimulationError
from repro.rtm.timing import RTMTechnology


@pytest.fixture
def cam() -> CAMArray:
    return CAMArray(rows=8, columns=4, technology=RTMTechnology(domains_per_nanowire=16))


class TestConstruction:
    def test_invalid_dimensions(self):
        with pytest.raises(CapacityError):
            CAMArray(rows=0, columns=4)
        with pytest.raises(CapacityError):
            CAMArray(rows=4, columns=0)

    def test_domains_from_technology(self, cam):
        assert cam.domains == 16


class TestOperandAccess:
    def test_load_and_read_signed(self, cam):
        values = [-4, -1, 0, 1, 2, 3, -2, 7]
        cam.load_operand(column=1, values=values, bitwidth=4)
        out = cam.read_operand(column=1, bitwidth=4)
        assert list(out) == values

    def test_load_with_offsets(self, cam):
        cam.load_operand(column=2, values=[1, 2, 3], bitwidth=4, domain_offset=8, row_offset=2)
        out = cam.read_operand(column=2, bitwidth=4, domain_offset=8, row_offset=2, num_rows=3)
        assert list(out) == [1, 2, 3]

    def test_load_capacity_checks(self, cam):
        with pytest.raises(CapacityError):
            cam.load_operand(0, list(range(9)), bitwidth=4)  # too many rows
        with pytest.raises(CapacityError):
            cam.load_operand(0, [0], bitwidth=20)  # too many domains
        with pytest.raises(CapacityError):
            cam.load_operand(9, [0], bitwidth=2)  # bad column

    def test_clear_operand(self, cam):
        cam.load_operand(0, [7] * 8, bitwidth=4)
        cam.clear_operand(0, bitwidth=4)
        assert list(cam.read_operand(0, bitwidth=4)) == [0] * 8

    def test_loaded_bits_counted(self, cam):
        cam.load_operand(0, [1, 2, 3, 4], bitwidth=4)
        assert cam.stats.loaded_bits == 16


class TestMaskedSearch:
    def test_single_column_match(self, cam):
        # Searching the LSB (domain 0) of alternating 1/0 values.
        cam.load_operand(0, [1, 0, 1, 0, 1, 0, 1, 0], bitwidth=2)
        tag = cam.masked_search(key={0: 1}, positions={0: 0})
        assert list(tag) == [True, False] * 4

    def test_multi_column_match_is_conjunction(self, cam):
        cam.load_operand(0, [1, 1, 0, 0, 1, 1, 0, 0], bitwidth=2)
        cam.load_operand(1, [1, 0, 1, 0, 1, 0, 1, 0], bitwidth=2)
        tag = cam.masked_search(key={0: 1, 1: 1}, positions={0: 0, 1: 0})
        assert list(tag) == [True, False, False, False, True, False, False, False]

    def test_search_requires_key(self, cam):
        with pytest.raises(SimulationError):
            cam.masked_search(key={}, positions={})

    def test_search_rejects_bad_bit(self, cam):
        with pytest.raises(SimulationError):
            cam.masked_search(key={0: 2}, positions={0: 0})

    def test_search_requires_positions(self, cam):
        with pytest.raises(SimulationError):
            cam.masked_search(key={0: 1}, positions={})

    def test_search_counts_events(self, cam):
        cam.masked_search(key={0: 0, 1: 0}, positions={0: 0, 1: 0})
        assert cam.stats.search_phases == 1
        assert cam.stats.searched_bits == 2 * cam.rows


class TestTaggedWrite:
    def test_write_only_tagged_rows(self, cam):
        tag = np.zeros(8, dtype=bool)
        tag[[1, 3]] = True
        written = cam.tagged_write(tag, values={2: 1}, positions={2: 0})
        assert written == 2
        content = [cam.peek_bit(row, 2, 0) for row in range(8)]
        assert content == [0, 1, 0, 1, 0, 0, 0, 0]

    def test_write_multiple_columns_one_phase(self, cam):
        tag = np.ones(8, dtype=bool)
        cam.tagged_write(tag, values={0: 1, 3: 1}, positions={0: 2, 3: 5})
        assert cam.stats.write_phases == 1
        assert cam.stats.written_bits == 16

    def test_write_rejects_bad_tag(self, cam):
        with pytest.raises(SimulationError):
            cam.tagged_write(np.ones(4, dtype=bool), values={0: 1}, positions={0: 0})

    def test_write_requires_values(self, cam):
        with pytest.raises(SimulationError):
            cam.tagged_write(np.ones(8, dtype=bool), values={}, positions={})


class TestAlignment:
    def test_align_counts_shifts(self, cam):
        steps = cam.align(0, 5)
        assert steps == 5
        assert cam.port_position(0) == 5
        assert cam.stats.lockstep_shift_steps == 5
        assert cam.stats.track_shifts == 5 * cam.rows

    def test_align_is_idempotent(self, cam):
        cam.align(0, 5)
        assert cam.align(0, 5) == 0

    def test_stats_reset(self, cam):
        cam.align(0, 3)
        stats = cam.reset_stats()
        assert stats.lockstep_shift_steps == 3
        assert cam.stats.lockstep_shift_steps == 0
