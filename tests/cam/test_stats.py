"""Tests for CAM event counters and their energy/latency conversion."""

import pytest

from repro.cam.stats import CAMStats
from repro.rtm.timing import RTMTechnology


class TestCAMStats:
    def test_merge_adds_all_fields(self):
        a = CAMStats(1, 2, 3, 4, 5, 6, 7, 8)
        b = CAMStats(10, 20, 30, 40, 50, 60, 70, 80)
        merged = a.merge(b)
        assert merged.search_phases == 11
        assert merged.searched_bits == 22
        assert merged.write_phases == 33
        assert merged.written_bits == 44
        assert merged.lockstep_shift_steps == 55
        assert merged.track_shifts == 66
        assert merged.read_bits == 77
        assert merged.loaded_bits == 88

    def test_total_phases(self):
        assert CAMStats(search_phases=3, write_phases=4).total_phases == 7

    def test_energy_uses_technology(self):
        technology = RTMTechnology(
            search_energy_fj_per_bit=2.0,
            write_energy_fj_per_bit=1.0,
            shift_energy_fj=0.5,
            read_energy_fj_per_bit=0.25,
        )
        stats = CAMStats(searched_bits=10, written_bits=4, track_shifts=8, read_bits=4)
        assert stats.energy_fj(technology) == pytest.approx(10 * 2 + 4 * 1 + 8 * 0.5 + 4 * 0.25)

    def test_latency_phase_bound(self):
        technology = RTMTechnology(search_latency_ns=0.1, write_latency_ns=0.1, shift_latency_ns=0.5)
        stats = CAMStats(search_phases=10, write_phases=10, lockstep_shift_steps=1)
        # Phase time (2.0 ns) dominates the single overlapped shift.
        assert stats.latency_ns(technology) == pytest.approx(2.0)

    def test_latency_shift_bound(self):
        technology = RTMTechnology(search_latency_ns=0.1, write_latency_ns=0.1, shift_latency_ns=0.5)
        stats = CAMStats(search_phases=1, write_phases=1, lockstep_shift_steps=10)
        assert stats.latency_ns(technology) == pytest.approx(5.0)

    def test_zero_stats_zero_cost(self):
        stats = CAMStats()
        technology = RTMTechnology()
        assert stats.energy_fj(technology) == 0.0
        assert stats.latency_ns(technology) == 0.0
