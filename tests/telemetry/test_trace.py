"""Core tracer semantics: spans, instants, ring buffer, install lifecycle."""

import threading
import time

import pytest

from repro import telemetry
from repro.telemetry.trace import Tracer


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts and ends with tracing disabled."""
    telemetry.uninstall()
    yield
    telemetry.uninstall()


class TestDisabledFastPath:
    def test_disabled_by_default(self):
        assert not telemetry.enabled()
        assert telemetry.get_tracer() is None

    def test_span_is_shared_noop_when_disabled(self):
        first = telemetry.span("a", layer=1)
        second = telemetry.span("b", layer=2)
        assert first is second  # the shared null span, no allocation
        with first:
            pass

    def test_instant_and_complete_are_noops_when_disabled(self):
        telemetry.instant("marker", reason="x")
        telemetry.complete("done", 0.0, 1.0, layer=3)
        telemetry.install()
        assert len(telemetry.get_tracer()) == 0


class TestRecording:
    def test_span_records_complete_event(self):
        tracer = telemetry.install()
        with telemetry.span("work", category="device", layer="conv1", tile=3):
            time.sleep(0.001)
        (event,) = tracer.events()
        assert event.name == "work"
        assert event.phase == "X"
        assert event.category == "device"
        assert event.args == {"layer": "conv1", "tile": 3}
        assert event.dur_us > 0

    def test_nested_spans_close_inner_first(self):
        tracer = telemetry.install()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        inner, outer = tracer.events()
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.ts_us >= outer.ts_us
        assert inner.end_us <= outer.end_us

    def test_span_records_error_on_exception(self):
        tracer = telemetry.install()
        with pytest.raises(ValueError):
            with telemetry.span("failing"):
                raise ValueError("boom")
        (event,) = tracer.events()
        assert event.args["error"] == "ValueError"

    def test_instant_records_zero_duration(self):
        tracer = telemetry.install()
        telemetry.instant("marker", reason="decline")
        (event,) = tracer.events()
        assert event.phase == "i"
        assert event.dur_us == 0.0

    def test_complete_records_explicit_endpoints(self):
        tracer = telemetry.install()
        telemetry.complete("measured", 1.0, 1.5, plan="p")
        (event,) = tracer.events()
        assert event.ts_us == pytest.approx(1.0e6)
        assert event.dur_us == pytest.approx(0.5e6)

    def test_attribute_named_name_does_not_collide(self):
        tracer = telemetry.install()
        telemetry.instant("marker", name="operand")
        with telemetry.span("outer", name="operand2"):
            pass
        first, second = tracer.events()
        assert first.args == {"name": "operand"}
        assert second.args == {"name": "operand2"}


class TestRingBuffer:
    def test_capacity_bounds_retention_and_counts_drops(self):
        tracer = telemetry.install(Tracer(capacity=4))
        for index in range(10):
            telemetry.instant("e", index=index)
        events = tracer.events()
        assert len(events) == 4
        assert [event.args["index"] for event in events] == [6, 7, 8, 9]
        assert tracer.dropped == 6

    def test_drain_empties_buffer(self):
        tracer = telemetry.install()
        telemetry.instant("e")
        drained = tracer.drain()
        assert len(drained) == 1
        assert len(tracer) == 0

    def test_absorb_merges_shipped_batches(self):
        parent = telemetry.install()
        child = Tracer()
        child.instant("from-child", worker=1)
        parent.absorb(tuple(child.drain()))
        (event,) = parent.events()
        assert event.name == "from-child"


class TestInstallLifecycle:
    def test_install_is_idempotent(self):
        first = telemetry.install()
        second = telemetry.install()
        assert first is second

    def test_explicit_tracer_replaces(self):
        telemetry.install()
        mine = Tracer()
        assert telemetry.install(mine) is mine

    def test_uninstall_returns_and_disables(self):
        tracer = telemetry.install()
        assert telemetry.uninstall() is tracer
        assert not telemetry.enabled()
        assert telemetry.uninstall() is None

    def test_capture_restores_previous_tracer(self):
        outer = telemetry.install()
        with telemetry.capture() as inner:
            assert telemetry.get_tracer() is inner
            telemetry.instant("inner-event")
        assert telemetry.get_tracer() is outer
        assert len(outer.events()) == 0
        assert len(inner.events()) == 1


class TestThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        tracer = telemetry.install()
        per_thread = 200

        def record(worker):
            for index in range(per_thread):
                telemetry.instant("e", worker=worker, index=index)

        threads = [
            threading.Thread(target=record, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer) == 4 * per_thread
        assert tracer.dropped == 0
