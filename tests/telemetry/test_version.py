"""``repro --version`` must match the packaging metadata."""

import pathlib
import re

import repro
from repro.cli import _version_string


def _pyproject_version() -> str:
    pyproject = (
        pathlib.Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
    )
    text = pyproject.read_text()
    try:
        import tomllib

        return tomllib.loads(text)["project"]["version"]
    except ModuleNotFoundError:  # Python < 3.11
        match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
        assert match, "pyproject.toml has no version field"
        return match.group(1)


def test_package_version_matches_pyproject():
    assert repro.__version__ == _pyproject_version()


def test_cli_version_string_matches_pyproject():
    assert _version_string() == _pyproject_version()


def test_version_subcommand(capsys):
    from repro.cli import main

    assert main(["version"]) == 0
    assert capsys.readouterr().out.strip() == f"repro {_pyproject_version()}"


def test_version_flag_exits_zero(capsys):
    import pytest

    from repro.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert _pyproject_version() in capsys.readouterr().out
