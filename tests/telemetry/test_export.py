"""Exporter contracts: Chrome trace-event schema, JSONL round-trip, summary."""

import json

import pytest

from repro import telemetry
from repro.telemetry.export import (
    chrome_trace,
    read_jsonl,
    summarize_spans,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.trace import Tracer


@pytest.fixture(autouse=True)
def clean_tracer():
    telemetry.uninstall()
    yield
    telemetry.uninstall()


@pytest.fixture
def sample_events():
    tracer = telemetry.install(Tracer())
    with telemetry.span("device.layer", category="device",
                        track="ap-group/0", layer="conv1"):
        with telemetry.span("device.tile", category="device", tile=0):
            pass
    telemetry.instant("accelerator.lease", category="device", ap="(0, 1)")
    telemetry.complete("session.request", 1.0, 2.0, category="session",
                       request_id=0)
    events = tracer.events()
    telemetry.uninstall()
    return events


class TestChromeTrace:
    def test_payload_validates_against_schema(self, sample_events):
        payload = chrome_trace(sample_events)
        assert validate_chrome_trace(payload) == []

    def test_metadata_events_name_processes_and_threads(self, sample_events):
        payload = chrome_trace(sample_events)
        phases = [event["ph"] for event in payload["traceEvents"]]
        assert "M" in phases
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in metadata)
        assert any(e["name"] == "thread_name" for e in metadata)

    def test_track_events_get_stable_synthetic_tid(self, sample_events):
        payload = chrome_trace(sample_events)
        tracked = [
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["name"] == "device.layer"
        ]
        assert tracked
        assert all(e["tid"] >= 1_000_000 for e in tracked)
        # The logical lane is named after the track.
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "ap-group/0" in names

    def test_timestamps_monotonic_and_complete_events_have_dur(
        self, sample_events
    ):
        payload = chrome_trace(sample_events)
        timeline = [e for e in payload["traceEvents"] if e["ph"] != "M"]
        stamps = [e["ts"] for e in timeline]
        assert stamps == sorted(stamps)
        for event in timeline:
            assert event["ts"] >= 0
            if event["ph"] == "X":
                assert event["dur"] >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_written_file_is_loadable_json(self, sample_events, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, sample_events)
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []

    def test_validate_flags_malformed_payloads(self):
        problems = validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        assert problems
        assert validate_chrome_trace({}) != []


class TestJsonl:
    def test_round_trip_preserves_span_fields(self, sample_events, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, sample_events)
        rows = read_jsonl(path)
        assert len(rows) == len(sample_events)
        by_name = {row["name"]: row for row in rows}
        assert by_name["device.layer"]["track"] == "ap-group/0"
        assert by_name["session.request"]["args"]["request_id"] == 0


class TestSummary:
    def test_rows_sorted_by_total_duration(self, sample_events):
        rows = summarize_spans(sample_events)
        names = [row[0] for row in rows]
        assert "session.request" in names
        totals = [row[2] for row in rows]
        assert totals == sorted(totals, reverse=True)

    def test_top_limits_rows(self, sample_events):
        assert len(summarize_spans(sample_events, top=1)) == 1
