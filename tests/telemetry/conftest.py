"""Shared fixtures of the telemetry suite: a tiny functional model."""

import pytest

from repro.nn.layers import (
    BatchNorm2d,
    Flatten,
    MaxPool2d,
    ReLU,
    TernaryConv2d,
    TernaryLinear,
)
from repro.nn.model import Sequential


@pytest.fixture(scope="module")
def tiny_cnn():
    """A minimal conv/pool/fc stack (fast enough for the executor matrix)."""
    model = Sequential(
        [
            TernaryConv2d(3, 4, kernel_size=3, stride=1, padding=1,
                          sparsity=0.5, rng=1),
            BatchNorm2d(4),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            TernaryLinear(4 * 4 * 4, 10, sparsity=0.5, rng=3),
        ],
        name="tinycnn",
    )
    return model, (3, 8, 8)
