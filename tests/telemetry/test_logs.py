"""Stdlib logging wiring: namespacing, levels, and diagnosable declines."""

import io
import logging

import pytest

from repro.telemetry.logs import LOG_ENV_VAR, configure_logging, get_logger


@pytest.fixture(autouse=True)
def reset_repro_logging():
    yield
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_handler", False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


class TestGetLogger:
    def test_namespaces_under_repro(self):
        assert get_logger("repro.ap.backends.batched").name == (
            "repro.ap.backends.batched"
        )
        assert get_logger("ap.backends").name == "repro.ap.backends"


class TestConfigureLogging:
    def test_explicit_level(self):
        stream = io.StringIO()
        configure_logging(level="DEBUG", stream=stream)
        get_logger("test").debug("visible")
        assert "visible" in stream.getvalue()

    def test_default_level_is_warning(self, monkeypatch):
        monkeypatch.delenv(LOG_ENV_VAR, raising=False)
        stream = io.StringIO()
        configure_logging(stream=stream)
        get_logger("test").info("hidden")
        get_logger("test").warning("shown")
        output = stream.getvalue()
        assert "hidden" not in output
        assert "shown" in output

    def test_env_var_sets_level(self, monkeypatch):
        monkeypatch.setenv(LOG_ENV_VAR, "INFO")
        stream = io.StringIO()
        configure_logging(stream=stream)
        get_logger("test").info("now visible")
        assert "now visible" in stream.getvalue()


class TestBatchedDeclineLogging:
    def test_wave_decline_is_logged(self):
        """The batched backend's fallback is diagnosable, not silent."""
        from repro.ap.backends.batched import execute_program_wave

        stream = io.StringIO()
        configure_logging(level="DEBUG", stream=stream)
        # rows < 1 is an unambiguous decline.
        assert execute_program_wave([], [[]], 0, 8) is None
        assert "wave declined" in stream.getvalue()
