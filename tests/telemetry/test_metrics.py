"""Metrics registry semantics and the ledger-mirroring adapters."""

import math

import pytest

from repro.cam.stats import CAMStats
from repro.telemetry.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    record_cam_stats,
    record_movement,
    record_pipeline_trace,
    record_queue_depth,
    record_request_latencies,
    record_residency,
    record_span_latencies,
)


class TestCounter:
    def test_inc_and_labels(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(4, layer="conv1")
        assert counter.value() == 1
        assert counter.value(layer="conv1") == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("hits").inc(-1)


class TestHistogram:
    def test_summary_percentiles(self):
        histogram = Histogram("latency")
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p99"] == pytest.approx(99.01)

    def test_empty_percentile_is_nan(self):
        assert math.isnan(Histogram("latency").percentile(50))

    def test_window_keeps_most_recent(self):
        histogram = Histogram("latency", max_samples=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.count() == 4  # total count includes evicted
        assert histogram.summary()["min"] == 2.0  # window dropped the oldest


class TestRegistry:
    def test_get_or_create_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_flat_schema(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.gauge("depth").set(2, group="g0")
        registry.histogram("lat").observe(5.0)
        flat = registry.flat()
        assert flat["requests"] == 3
        assert flat["depth{group=g0}"] == 2
        assert flat["lat_count"] == 1
        assert flat["lat_p50"] == 5.0


class TestAdapters:
    def test_record_cam_stats(self):
        stats = CAMStats(search_phases=10, searched_bits=100, write_phases=5,
                         written_bits=50)
        registry = MetricsRegistry()
        record_cam_stats(registry, stats)
        flat = registry.flat()
        assert flat["cam_search_phases"] == 10
        assert flat["cam_written_bits"] == 50

    def test_record_residency(self):
        class Ledger:
            lease_events = 13
            reprogram_events = 13
            warm_hits = 99

        registry = MetricsRegistry()
        record_residency(registry, Ledger())
        flat = registry.flat()
        assert flat["cold_lease_events"] == 13
        assert flat["warm_dispatches"] == 99

    def test_record_movement_accepts_scope_mapping(self):
        class Cost:
            bits = 1024.0
            energy_fj = 2.5

        registry = MetricsRegistry()
        record_movement(registry, {"global": Cost()})
        flat = registry.flat()
        assert flat["movement_bits{scope=global}"] == 1024.0
        assert flat["movement_energy_fj{scope=global}"] == 2.5

    def test_record_pipeline_trace_uses_group_trace_fields(self):
        from repro.runtime.pipeline import GroupTrace

        trace = GroupTrace(group=3, dispatches=8, in_flight=0, max_in_flight=2)
        registry = MetricsRegistry()
        record_pipeline_trace(registry, [trace])
        flat = registry.flat()
        assert flat["pipeline_peak_depth{group=3}"] == 2
        assert flat["pipeline_entries{group=3}"] == 8

    def test_record_span_latencies(self):
        from repro import telemetry
        from repro.telemetry.trace import Tracer

        tracer = Tracer()
        telemetry.install(tracer)
        try:
            with telemetry.span("device.layer", category="device",
                                track="ap-group/1", layer="conv1"):
                pass
            telemetry.complete("session.request", 0.0, 0.010, request_id=0)
        finally:
            telemetry.uninstall()
        registry = MetricsRegistry()
        record_span_latencies(registry, tracer.events())
        flat = registry.flat()
        assert flat["layer_latency_ms_count{layer=conv1}"] == 1
        assert flat["request_latency_ms_p50"] == pytest.approx(10.0)
        assert any(key.startswith("ap_group_busy_ms_") for key in flat)


    def test_record_queue_depth(self):
        registry = MetricsRegistry()
        record_queue_depth(registry, 3, capacity=8)
        flat = registry.flat()
        assert flat["queue_depth"] == 3
        assert flat["queue_capacity"] == 8

    def test_record_queue_depth_without_capacity(self):
        registry = MetricsRegistry()
        record_queue_depth(registry, 0, frontend="cluster")
        flat = registry.flat()
        assert flat["queue_depth{frontend=cluster}"] == 0
        assert not any(key.startswith("queue_capacity") for key in flat)

    def test_record_request_latencies(self):
        registry = MetricsRegistry()
        record_request_latencies(registry, [0.010, 0.020, 0.030])
        flat = registry.flat()
        assert flat["request_latency_ms_count"] == 3
        assert flat["request_latency_ms_p50"] == 20.0
        assert flat["request_latency_ms_max"] == 30.0

    def test_request_latencies_share_the_span_histogram(self):
        """Adapter and span-fold feed one request_latency_ms family."""
        registry = MetricsRegistry()
        record_request_latencies(registry, [0.005])
        histogram = registry.histogram("request_latency_ms")
        assert histogram.count() == 1
