"""Tracing must never change a result: byte-identity on vs. off.

Instrumentation wraps work - it never touches the data path - so a traced
run must produce byte-identical logits, CAM counters and residency ledgers
to an untraced one, on every executor x backend combination.  The process
executor additionally ships its workers' spans back to the parent, which
must not perturb results either.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.session.session import Session


@pytest.fixture(autouse=True)
def clean_tracer():
    telemetry.uninstall()
    yield
    telemetry.uninstall()


def _run(tiny_cnn, *, executor, backend, trace):
    model, input_shape = tiny_cnn
    rng = np.random.default_rng(7)
    images = rng.random((2,) + input_shape, dtype=np.float32)
    with Session(
        model=model,
        input_shape=input_shape,
        executor=executor,
        backend=backend,
        workers=2,
        trace=trace,
    ) as session:
        session.compile().deploy()
        result = session.infer(images)
        stats = result.execution.total_stats
        residency = (
            session.residency.lease_events,
            session.residency.reprogram_events,
            session.residency.warm_hits,
        )
        events = session.trace_events()
    return result.logits.tobytes(), stats, residency, events


@pytest.mark.parametrize("executor", ["serial", "thread", "parallel"])
@pytest.mark.parametrize("backend", ["reference", "vectorized", "batched"])
def test_traced_run_is_byte_identical(tiny_cnn, executor, backend):
    baseline_logits, baseline_stats, baseline_residency, no_events = _run(
        tiny_cnn, executor=executor, backend=backend, trace=False
    )
    traced_logits, traced_stats, traced_residency, events = _run(
        tiny_cnn, executor=executor, backend=backend, trace=True
    )
    assert no_events == []
    assert traced_logits == baseline_logits
    assert traced_stats == baseline_stats
    assert traced_residency == baseline_residency
    names = {event.name for event in events}
    assert "session.compile" in names
    assert "session.deploy" in names
    assert "session.request" in names
    assert "device.layer" in names


def test_process_executor_ships_worker_spans(tiny_cnn):
    """Spans recorded inside pool workers surface in the parent's tracer."""
    _, _, _, events = _run(
        tiny_cnn, executor="parallel", backend="vectorized", trace=True
    )
    import os

    pids = {event.pid for event in events if event.name == "device.tile"}
    assert pids, "no device.tile spans collected"
    # Tile work ran in pool workers; their spans were shipped back with the
    # results and absorbed into the parent tracer.
    assert any(pid != os.getpid() for pid in pids)
    # Shipped spans share the parent's monotonic clock (fork), so they nest
    # inside the request span's window.
    request = next(e for e in events if e.name == "session.request")
    tiles = [e for e in events if e.name == "device.tile"]
    assert all(tile.ts_us >= request.ts_us - 1.0 for tile in tiles)
    assert all(tile.end_us <= request.end_us + 1.0 for tile in tiles)


def test_pipelined_trace_places_layers_on_ap_group_tracks(tiny_cnn):
    model, input_shape = tiny_cnn
    rng = np.random.default_rng(9)
    images = rng.random((3,) + input_shape, dtype=np.float32)
    with Session(
        model=model,
        input_shape=input_shape,
        executor="thread",
        workers=2,
        pipeline=True,
        trace=True,
    ) as session:
        session.compile().deploy()
        baseline = session.infer(images, pipeline=False)
        pipelined = session.infer(images, pipeline=True)
        events = session.trace_events()
    assert pipelined.logits.tobytes() == baseline.logits.tobytes()
    tracks = {
        event.track
        for event in events
        if event.name == "device.layer" and event.track
    }
    assert len(tracks) >= 2
    assert all(track.startswith("ap-group/") for track in tracks)
