"""Tests for the NeuroSim-style crossbar baseline."""

import pytest

from repro.baselines.crossbar import (
    CrossbarConfig,
    evaluate_crossbar_layer,
    evaluate_crossbar_model,
)
from repro.core.frontend import specs_for_network
from repro.errors import ConfigurationError
from repro.nn.stats import ConvLayerSpec
from repro.nn.ternary import synthetic_ternary_weights


def make_spec(cout=16, cin=8, k=3, size=16, name="conv"):
    weights = synthetic_ternary_weights((cout, cin, k, k), 0.5, rng=0)
    return ConvLayerSpec(name, weights, size, size, 1, 1)


class TestCrossbarConfig:
    def test_paper_baseline_parameters(self):
        config = CrossbarConfig()
        assert config.array_rows == 256
        assert config.weight_bits == 8
        assert config.adc_bits == 5
        assert config.columns_per_weight == 4

    def test_with_activation_bits(self):
        config = CrossbarConfig().with_activation_bits(4)
        assert config.activation_bits == 4
        assert config.adc_bits == 5

    def test_invalid_cell_bits(self):
        with pytest.raises(ConfigurationError):
            CrossbarConfig(cell_bits=16, weight_bits=8)


class TestCrossbarLayer:
    def test_energy_components_positive(self):
        result = evaluate_crossbar_layer(make_spec(), CrossbarConfig())
        assert result.energy_uj > 0
        assert result.latency_ms > 0
        assert result.arrays >= 1
        assert result.adc_conversions > 0

    def test_arrays_scale_with_layer_size(self):
        small = evaluate_crossbar_layer(make_spec(cout=16, cin=8), CrossbarConfig())
        large = evaluate_crossbar_layer(make_spec(cout=256, cin=256), CrossbarConfig())
        assert large.arrays > small.arrays

    def test_latency_scales_with_activation_bits(self):
        spec = make_spec()
        low = evaluate_crossbar_layer(spec, CrossbarConfig(activation_bits=4))
        high = evaluate_crossbar_layer(spec, CrossbarConfig(activation_bits=8))
        assert high.latency_ms > low.latency_ms
        assert high.energy_uj > low.energy_uj


class TestCrossbarModel:
    def test_totals_are_sums(self):
        specs = [make_spec(name="a"), make_spec(cout=32, name="b")]
        result = evaluate_crossbar_model(specs, CrossbarConfig())
        assert result.energy_uj == pytest.approx(sum(l.energy_uj for l in result.layers))
        assert result.arrays_used == sum(l.arrays for l in result.layers)

    def test_activation_bits_override(self):
        specs = [make_spec()]
        result = evaluate_crossbar_model(specs, activation_bits=4)
        assert result.activation_bits == 4

    def test_communication_fraction_matches_paper_ballpark(self):
        """The paper quotes ~41 % communication energy for the crossbar baseline."""
        specs = specs_for_network("resnet18", convolutions_only=True, rng=0)
        result = evaluate_crossbar_model(specs, activation_bits=8)
        assert 0.15 < result.communication_fraction < 0.6

    def test_resnet18_latency_in_paper_range(self):
        """The baseline's ResNet-18 latency should land near NeuroSim's ~10-12 ms."""
        specs = specs_for_network("resnet18", convolutions_only=True, rng=0)
        low = evaluate_crossbar_model(specs, activation_bits=4)
        high = evaluate_crossbar_model(specs, activation_bits=8)
        assert 5.0 < low.latency_ms < 20.0
        assert low.latency_ms < high.latency_ms < 25.0

    def test_energy_delay_product(self):
        specs = [make_spec()]
        result = evaluate_crossbar_model(specs)
        assert result.energy_delay_product == pytest.approx(
            result.energy_uj * result.latency_ms
        )
