"""Tests for the DeepCAM-style baseline."""

import numpy as np
import pytest

from repro.baselines.deepcam import (
    DeepCAMConfig,
    evaluate_deepcam_model,
    hashed_dot_product,
)
from repro.errors import ConfigurationError
from repro.nn.stats import ConvLayerSpec
from repro.nn.ternary import synthetic_ternary_weights


def make_specs():
    return [
        ConvLayerSpec(
            "conv", synthetic_ternary_weights((32, 16, 3, 3), 0.5, rng=0), 16, 16, 1, 1
        )
    ]


class TestDeepCAMModel:
    def test_energy_and_latency_positive(self):
        result = evaluate_deepcam_model(make_specs(), DeepCAMConfig())
        assert result.energy_uj > 0
        assert result.latency_ms > 0
        assert result.queries > 0

    def test_longer_hashes_cost_more(self):
        short = evaluate_deepcam_model(make_specs(), DeepCAMConfig(hash_length=32))
        long = evaluate_deepcam_model(make_specs(), DeepCAMConfig(hash_length=128))
        assert long.energy_uj > short.energy_uj

    def test_invalid_config(self):
        with pytest.raises(Exception):
            DeepCAMConfig(hash_length=0)


class TestHashedDotProduct:
    def test_shapes(self, rng):
        x = rng.normal(size=(10, 32))
        w = rng.normal(size=(5, 32))
        approx = hashed_dot_product(x, w, hash_length=64, rng=0)
        assert approx.shape == (10, 5)

    def test_longer_hash_is_more_accurate(self, rng):
        x = rng.normal(size=(50, 64))
        w = rng.normal(size=(20, 64))
        exact = x @ w.T
        scale = np.abs(exact).mean()
        short_err = np.abs(hashed_dot_product(x, w, 16, rng=0) - exact).mean() / scale
        long_err = np.abs(hashed_dot_product(x, w, 512, rng=0) - exact).mean() / scale
        assert long_err < short_err

    def test_approximation_correlates_with_exact(self, rng):
        x = rng.normal(size=(40, 32))
        w = rng.normal(size=(10, 32))
        exact = (x @ w.T).ravel()
        approx = hashed_dot_product(x, w, 256, rng=0).ravel()
        correlation = np.corrcoef(exact, approx)[0, 1]
        assert correlation > 0.8

    def test_incompatible_shapes(self, rng):
        with pytest.raises(ConfigurationError):
            hashed_dot_product(rng.normal(size=(4, 8)), rng.normal(size=(2, 9)))

    def test_invalid_hash_length(self, rng):
        with pytest.raises(ConfigurationError):
            hashed_dot_product(rng.normal(size=(4, 8)), rng.normal(size=(2, 8)), 0)
