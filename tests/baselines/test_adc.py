"""Tests for the ADC quantization model."""

import numpy as np
import pytest

from repro.baselines.adc import ADCQuantizer
from repro.errors import ConfigurationError


class TestADCQuantizer:
    def test_levels(self):
        assert ADCQuantizer(bits=5).levels == 32

    def test_quantization_introduces_bounded_error(self, rng):
        adc = ADCQuantizer(bits=5)
        values = rng.normal(0, 10, 2000)
        quantized = adc.quantize(values)
        error = np.abs(quantized - values)
        # Within the clipping range the error is at most half a step.
        full_scale = adc.clip_sigma * values.std()
        step = 2 * full_scale / adc.levels
        inside = np.abs(values) <= full_scale - step
        assert np.all(error[inside] <= step / 2 + 1e-9)

    def test_more_bits_less_error(self, rng):
        values = rng.normal(0, 5, 5000)
        coarse = np.abs(ADCQuantizer(bits=3).quantize(values) - values).mean()
        fine = np.abs(ADCQuantizer(bits=8).quantize(values) - values).mean()
        assert fine < coarse

    def test_constant_input_passthrough(self):
        adc = ADCQuantizer(bits=5)
        values = np.full(10, 3.0)
        assert np.allclose(adc.quantize(values), values)

    def test_perturb_matmul_partials(self, rng):
        adc = ADCQuantizer(bits=4)
        values = rng.normal(0, 3, (16, 8))
        one = adc.perturb_matmul(values, num_partials=1)
        many = adc.perturb_matmul(values, num_partials=4)
        assert one.shape == values.shape
        assert many.shape == values.shape
        # More partials -> more accumulated quantization noise on average.
        assert np.abs(many - values).mean() >= np.abs(one - values).mean() * 0.5

    def test_invalid_partials(self, rng):
        with pytest.raises(ConfigurationError):
            ADCQuantizer().perturb_matmul(rng.normal(size=(2, 2)), num_partials=0)

    def test_make_perturbation_callable(self, rng):
        perturbation = ADCQuantizer(bits=5).make_perturbation(2)
        values = rng.normal(0, 1, (4, 4))
        assert perturbation(values).shape == values.shape

    def test_invalid_config(self):
        with pytest.raises(Exception):
            ADCQuantizer(bits=0)
