"""Overlapping requests over one live deployment: submit()/gather().

The weight-resident claim has to survive concurrency: several clients'
requests pipeline over the same pinned plan at once, and the residency
ledger must stay all-warm - zero cold lease or reprogram events after
deploy - while every client gets logits byte-identical to serving the same
batches sequentially.
"""

import numpy as np
import pytest

from repro.errors import ModelDefinitionError, SessionStateError
from repro.session import Session, SessionConfig


def _config(model, shape, **overrides):
    return SessionConfig(
        model=model, input_shape=shape, bits=4, name="tinycnn", **overrides
    )


@pytest.fixture(scope="module")
def batches(images_rng):
    return [images_rng.normal(size=(2, 3, 8, 8)) for _ in range(3)]


@pytest.fixture(scope="module")
def sequential_results(tiny_cnn, batches):
    model, shape = tiny_cnn
    with Session(_config(model, shape)) as session:
        session.compile().deploy()
        return [session.infer(batch) for batch in batches]


class TestOverlappingRequests:
    @pytest.mark.parametrize("executor,workers", [("serial", None), ("thread", 2)])
    def test_gather_matches_sequential_serving(
        self, tiny_cnn, batches, sequential_results, executor, workers
    ):
        model, shape = tiny_cnn
        config = _config(
            model, shape, executor=executor, workers=workers, concurrency=3
        )
        with Session(config) as session:
            session.compile().deploy()
            deployed = session.residency
            handles = [session.submit(batch) for batch in batches]
            results = session.gather()
            after = session.residency

        assert [handle.index for handle in handles] == [0, 1, 2]
        assert all(handle.done() for handle in handles)
        assert len(results) == len(batches)
        for overlapped, sequential in zip(results, sequential_results):
            assert np.array_equal(overlapped.logits, sequential.logits)
            assert overlapped.execution.mode == "pipelined"
            assert (
                overlapped.execution.total_stats
                == sequential.execution.total_stats
            )
        # The heart of the claim: overlapping clients never lease or
        # reprogram anything after deploy.
        assert after.lease_events == deployed.lease_events
        assert after.reprogram_events == deployed.reprogram_events
        assert after.warm_hits > deployed.warm_hits

    def test_gather_records_requests_in_submission_order(
        self, tiny_cnn, batches
    ):
        model, shape = tiny_cnn
        with Session(_config(model, shape, concurrency=3)) as session:
            session.compile().deploy()
            for batch in batches:
                session.submit(batch)
            results = session.gather()
            records = session.requests
        assert len(records) == len(batches)
        for record, result in zip(records, results):
            assert record.execution is result.execution
        report_images = sum(record.images for record in records)
        assert report_images == sum(batch.shape[0] for batch in batches)

    def test_individual_handle_result(self, tiny_cnn, batches):
        model, shape = tiny_cnn
        with Session(_config(model, shape, concurrency=2)) as session:
            session.compile().deploy()
            handle = session.submit(batches[0])
            result = handle.result(timeout=120)
            assert result.images == batches[0].shape[0]
            # gather() still collects (and records) the same request.
            gathered = session.gather()
            assert gathered[0] is result

    def test_submit_requires_deployment(self, tiny_cnn, batches):
        model, shape = tiny_cnn
        with Session(_config(model, shape)) as session:
            session.compile()
            with pytest.raises(SessionStateError):
                session.submit(batches[0])

    def test_failed_request_propagates_but_keeps_session_alive(
        self, tiny_cnn, batches
    ):
        model, shape = tiny_cnn
        with Session(_config(model, shape, concurrency=2)) as session:
            session.compile().deploy()
            session.submit(batches[0])
            session.submit(np.zeros((2, 99)))  # malformed request
            with pytest.raises(ModelDefinitionError):
                session.gather()
            # The good request was recorded; the session still serves.
            assert len(session.requests) == 1
            follow_up = session.infer(batches[1])
            assert follow_up.images == batches[1].shape[0]
            assert session.residency.lease_events > 0  # deploy events only

    def test_close_waits_for_outstanding_requests(self, tiny_cnn, batches):
        model, shape = tiny_cnn
        session = Session(_config(model, shape, concurrency=2))
        session.compile().deploy()
        handle = session.submit(batches[0])
        session.close()
        assert handle.done()
        # Pins and pools are gone; closing again is a no-op.
        assert session.accelerator.pinned_addresses() == []
        session.close()

    def test_pipelined_infer_flag_byte_identical(
        self, tiny_cnn, batches, sequential_results
    ):
        """Session.infer(pipeline=True) equals the layer-synchronous serve."""
        model, shape = tiny_cnn
        with Session(_config(model, shape, pipeline=True)) as session:
            session.compile().deploy()
            result = session.infer(batches[0])
            assert result.execution.mode == "pipelined"
            assert np.array_equal(
                result.logits, sequential_results[0].logits
            )
            # Per-request override back to layer-sync works too.
            override = session.infer(batches[0], pipeline=False)
            assert override.execution.mode == "layer-sync"
            assert np.array_equal(override.logits, result.logits)


class TestPipelinedSyntheticRun:
    def test_run_pipeline_flag_byte_identical(self, tiny_cnn):
        model, shape = tiny_cnn
        with Session(_config(model, shape)) as session:
            session.compile().deploy()
            deployed = session.residency
            baseline = session.run()
            pipelined = session.run(pipeline=True)
            after = session.residency
        assert baseline.mode == "layer-sync"
        assert pipelined.mode == "pipelined"
        assert pipelined.total_stats == baseline.total_stats
        assert pipelined.checksum == baseline.checksum
        assert pipelined.energy_uj == baseline.energy_uj
        assert pipelined.latency_ms == baseline.latency_ms
        # Synthetic pipelined dispatches stay warm on the resident plan too.
        assert after.lease_events == deployed.lease_events
        assert after.reprogram_events == deployed.reprogram_events


class TestTeardownSafety:
    def test_close_is_exception_safe(self, tiny_cnn, batches, monkeypatch):
        """unpin always runs, even when the driver teardown raises."""
        model, shape = tiny_cnn
        session = Session(_config(model, shape))
        session.compile().deploy()
        session.infer(batches[0])
        accelerator = session.accelerator
        assert accelerator.pinned_addresses()

        def exploding_close():
            raise RuntimeError("executor pool stuck")

        monkeypatch.setattr(session._driver, "close", exploding_close)
        with pytest.raises(RuntimeError, match="executor pool stuck"):
            session.close()
        assert accelerator.pinned_addresses() == []
        # Idempotent after the failed close.
        session.close()

    def test_context_manager_cleans_up_after_request_error(
        self, tiny_cnn, batches
    ):
        model, shape = tiny_cnn
        with pytest.raises(ModelDefinitionError):
            with Session(_config(model, shape, pipeline=True)) as session:
                session.compile().deploy()
                accelerator = session.accelerator
                session.infer(np.zeros((1, 7)))  # malformed -> raises
        assert accelerator.pinned_addresses() == []

    def test_concurrency_config_validated(self, tiny_cnn):
        model, shape = tiny_cnn
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="concurrency"):
            _config(model, shape, concurrency=0)
        with pytest.raises(ConfigurationError, match="pipeline_depth"):
            _config(model, shape, pipeline_depth=0)
