"""The opt-in on-disk compile cache (``REPRO_COMPILE_CACHE``)."""

import numpy as np
import pytest

import repro
from repro.session import Session, cache
from repro.session.config import SessionConfig

MODEL_KWARGS = dict(model="vgg9", width=1 / 32)


def _compile_status(**kwargs):
    session = Session(**MODEL_KWARGS, **kwargs)
    try:
        session.compile()
        return session, session.compile_cache_status
    except BaseException:
        session.close()
        raise


class TestCacheKey:
    def test_registry_config_is_cacheable(self):
        key = cache.cache_key(SessionConfig(**MODEL_KWARGS), repro.__version__)
        assert isinstance(key, str) and len(key) == 64

    def test_key_covers_compile_inputs(self):
        base = cache.cache_key(SessionConfig(**MODEL_KWARGS), repro.__version__)
        for variant in (
            SessionConfig(model="vgg9", width=1 / 16),
            SessionConfig(model="vgg11", width=1 / 32),
            SessionConfig(**MODEL_KWARGS, bits=8),
            SessionConfig(**MODEL_KWARGS, signed=True),
            SessionConfig(**MODEL_KWARGS, rng=7),
        ):
            assert cache.cache_key(variant, repro.__version__) != base
        assert cache.cache_key(SessionConfig(**MODEL_KWARGS), "0.0.0") != base

    def test_module_tree_models_are_not_cacheable(self):
        from repro.nn.layers import Flatten, TernaryLinear
        from repro.nn.model import Sequential

        model = Sequential(
            [Flatten(), TernaryLinear(12, 4, sparsity=0.5, rng=0)],
            name="custom",
        )
        config = SessionConfig(model=model, input_shape=(3, 2, 2))
        assert cache.cache_key(config, repro.__version__) is None

    def test_generator_rng_is_not_cacheable(self):
        config = SessionConfig(**MODEL_KWARGS, rng=np.random.default_rng(0))
        assert cache.cache_key(config, repro.__version__) is None


class TestSessionCompileCache:
    def test_off_without_environment(self, monkeypatch):
        monkeypatch.delenv(cache.COMPILE_CACHE_ENV, raising=False)
        session, status = _compile_status()
        session.close()
        assert status == "off"

    def test_miss_then_hit_byte_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache.COMPILE_CACHE_ENV, str(tmp_path))
        rng = np.random.default_rng(3)

        first, status = _compile_status()
        assert status == "miss"
        image = rng.uniform(0.0, 1.0, size=(1,) + first.input_shape)
        first.deploy()
        cold = first.infer(image)
        first.close()

        second, status = _compile_status()
        assert status == "hit"
        second.deploy()
        warm = second.infer(image)
        second.close()

        assert np.array_equal(cold.logits, warm.logits)
        assert (
            cold.execution.total_stats == warm.execution.total_stats
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache.COMPILE_CACHE_ENV, str(tmp_path))
        session, status = _compile_status()
        session.close()
        assert status == "miss"
        (entry,) = tmp_path.glob("compiled-*.pkl")
        entry.write_bytes(b"not a pickle")
        session, status = _compile_status()
        session.close()
        assert status == "miss"
        # ... and the recompile healed the entry.
        session, status = _compile_status()
        session.close()
        assert status == "hit"

    def test_module_tree_model_stays_off(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache.COMPILE_CACHE_ENV, str(tmp_path))
        from repro.nn.layers import Flatten, TernaryLinear
        from repro.nn.model import Sequential

        model = Sequential(
            [Flatten(), TernaryLinear(12, 4, sparsity=0.5, rng=0)],
            name="tiny",
        )
        session = Session(model=model, input_shape=(3, 2, 2))
        session.compile()
        status = session.compile_cache_status
        session.close()
        assert status == "off"
        assert not list(tmp_path.iterdir())

    def test_unwritable_directory_degrades_to_compile(self, tmp_path,
                                                      monkeypatch):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        monkeypatch.setenv(cache.COMPILE_CACHE_ENV, str(blocked))
        session, status = _compile_status()
        session.close()
        # Store fails quietly; the session still compiled.
        assert status == "miss"
        assert session.compiled is not None


class TestClusterWitness:
    def test_cluster_reports_scratch_session_status(self, tmp_path,
                                                    monkeypatch):
        from repro.serving import Cluster, ClusterConfig

        monkeypatch.setenv(cache.COMPILE_CACHE_ENV, str(tmp_path))
        config = ClusterConfig(**MODEL_KWARGS, replicas=1)
        cluster = Cluster(config)
        try:
            cluster._compile_artifacts()
            assert cluster.compile_cache_status == "miss"
        finally:
            cluster.close()
        cluster = Cluster(config)
        try:
            cluster._compile_artifacts()
            assert cluster.compile_cache_status == "hit"
            assert cluster.compiled is not None
        finally:
            cluster.close()
