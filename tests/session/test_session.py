"""The weight-resident Session API: lifecycle, residency, equivalence, report.

The acceptance surface of the session redesign:

* a warm session serves repeated ``infer()`` batches with **zero** additional
  AP lease/reprogram events (asserted via the accelerator's residency
  ledger),
* logits stay byte-identical across executors and backends and vs. the
  pure-NumPy quantized reference,
* ``report()`` splits ``deploy_cost`` from ``per_request_cost`` and
  amortizes the former,
* error paths are explicit: ``infer()`` before ``deploy()`` raises
  :class:`~repro.errors.SessionStateError`, slice-sampled compilations are
  rejected for functional inference, and an oversubscribed resident deploy
  raises :class:`~repro.errors.CapacityError`.
"""

import numpy as np
import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.config import ArchitectureConfig
from repro.errors import CapacityError, ConfigurationError, SessionStateError
from repro.inference.reference import quantized_reference_forward
from repro.session import Session, SessionConfig, SessionState


def make_session(tiny_cnn, **overrides):
    model, input_shape = tiny_cnn
    return Session(model=model, input_shape=input_shape, bits=4, **overrides)


class TestLifecycle:
    def test_infer_before_compile(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        with make_session(tiny_cnn) as session:
            with pytest.raises(SessionStateError, match="deploy"):
                session.infer(images_rng.uniform(0, 1, (1,) + input_shape))

    def test_infer_before_deploy(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        with make_session(tiny_cnn) as session:
            session.compile()
            with pytest.raises(SessionStateError, match="compile\\(\\) -> deploy\\(\\)"):
                session.infer(images_rng.uniform(0, 1, (1,) + input_shape))

    def test_run_before_deploy(self, tiny_cnn):
        with make_session(tiny_cnn) as session:
            with pytest.raises(SessionStateError):
                session.run()

    def test_deploy_before_compile(self, tiny_cnn):
        with make_session(tiny_cnn) as session:
            with pytest.raises(SessionStateError):
                session.deploy()

    def test_compile_twice_rejected(self, tiny_cnn):
        with make_session(tiny_cnn) as session:
            session.compile()
            with pytest.raises(SessionStateError):
                session.compile()

    def test_closed_session_rejects_requests(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        session = make_session(tiny_cnn)
        session.compile().deploy()
        session.close()
        assert session.state == SessionState.CLOSED
        with pytest.raises(SessionStateError):
            session.infer(images_rng.uniform(0, 1, (1,) + input_shape))
        session.close()  # idempotent

    def test_module_model_requires_input_shape(self, tiny_cnn):
        model, _ = tiny_cnn
        with Session(model=model) as session:
            with pytest.raises(SessionStateError, match="input_shape"):
                session.compile()

    def test_crosscheck_requires_a_request(self, tiny_cnn):
        with make_session(tiny_cnn) as session:
            session.compile().deploy()
            with pytest.raises(SessionStateError, match="no requests"):
                session.crosscheck()

    def test_report_requires_deploy(self, tiny_cnn):
        with make_session(tiny_cnn) as session:
            with pytest.raises(SessionStateError):
                session.report()


class TestWarmResidency:
    """The tentpole claim: weights stay in CAM across requests."""

    def test_repeated_infer_has_zero_lease_events(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        images = images_rng.uniform(0, 1, (2,) + input_shape)
        with make_session(tiny_cnn) as session:
            session.compile().deploy()
            deployed = session.residency
            for _ in range(3):
                session.infer(images)
            after = session.residency
        assert after.lease_events == deployed.lease_events
        assert after.reprogram_events == deployed.reprogram_events
        assert after.reprogram_bits == deployed.reprogram_bits
        # 3 requests x 2 images x num_tiles warm dispatches.
        assert after.warm_hits == 3 * 2 * session.plan.num_tiles

    def test_synthetic_run_is_warm_too(self, tiny_cnn):
        with make_session(tiny_cnn) as session:
            session.compile().deploy()
            deployed = session.residency
            session.run()
            session.run()
            after = session.residency
        assert after.lease_events == deployed.lease_events
        assert after.reprogram_events == deployed.reprogram_events
        assert after.warm_hits == 2 * session.plan.num_tiles

    def test_deploy_charges_programming_once(self, tiny_cnn):
        with make_session(tiny_cnn) as session:
            session.compile().deploy()
            deployment = session.deployment
        assert deployment.tile_programs == session.plan.num_tiles
        assert deployment.reprogram_events == session.plan.num_tiles
        assert deployment.aps_pinned == len(
            {tuple(t.address) for layer in session.plan.layers for t in layer.tiles}
        )
        assert deployment.weight_bits > 0
        assert deployment.energy_uj > 0

    def test_cold_path_still_counts_events(self, tiny_cnn, images_rng):
        """Without a deploy, every dispatch charges a lease + reprogram."""
        from repro.inference.engine import BatchedInference

        model, input_shape = tiny_cnn
        images = images_rng.uniform(0, 1, (2,) + input_shape)
        driver = BatchedInference(model, input_shape, bits=4)
        try:
            driver.run(images)
            residency = driver.accelerator.residency
        finally:
            driver.close()
        assert residency.warm_hits == 0
        assert residency.lease_events == 2 * driver.plan.num_tiles
        assert residency.reprogram_events == residency.lease_events
        assert residency.reprogram_bits > 0

    def test_resident_placement_gives_layers_disjoint_aps(self, tiny_cnn):
        with make_session(tiny_cnn) as session:
            session.compile().deploy()
            plan = session.plan
        assert plan.placement == "resident"
        per_layer = [
            {tuple(tile.address) for tile in layer.tiles} for layer in plan.layers
        ]
        for i in range(len(per_layer)):
            for j in range(i + 1, len(per_layer)):
                assert not (per_layer[i] & per_layer[j]), (
                    f"layers {i} and {j} share APs in a resident plan"
                )

    def test_shared_plan_cannot_be_deployed(self, tiny_cnn):
        from repro.core.compiler import CompilerConfig, compile_model
        from repro.nn.stats import model_layer_specs
        from repro.runtime.plan import build_execution_plan

        model, input_shape = tiny_cnn
        specs = model_layer_specs(model, input_shape)
        compiled = compile_model(
            specs, CompilerConfig(activation_bits=4), emit_programs=True
        )
        accelerator = Accelerator()
        plan = build_execution_plan(compiled, accelerator=accelerator)
        assert plan.placement == "shared"
        with pytest.raises(ConfigurationError, match="resident"):
            accelerator.deploy_plan(plan)


class TestEquivalence:
    """Logits byte-identical across executors x backends and vs. the reference."""

    @pytest.fixture(scope="class")
    def reference_logits(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        images = images_rng.uniform(0, 1, (2,) + input_shape)
        return images, quantized_reference_forward(
            model, images, input_shape=input_shape, bits=4
        )

    @pytest.mark.parametrize("executor", ["serial", "parallel", "thread"])
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_matrix_byte_identical(
        self, tiny_cnn, reference_logits, executor, backend
    ):
        images, reference = reference_logits
        with make_session(
            tiny_cnn, executor=executor, workers=2, backend=backend
        ) as session:
            session.compile().deploy()
            result = session.infer(images)
        assert np.array_equal(result.logits, reference)

    def test_repeated_requests_byte_identical(self, tiny_cnn, reference_logits):
        images, reference = reference_logits
        with make_session(tiny_cnn) as session:
            session.compile().deploy()
            first = session.infer(images)
            second = session.infer(images)
        assert np.array_equal(first.logits, second.logits)
        assert np.array_equal(first.logits, reference)
        assert first.execution.total_stats == second.execution.total_stats

    def test_micro_batching_byte_identical(self, tiny_cnn, reference_logits):
        images, reference = reference_logits
        with make_session(tiny_cnn) as session:
            session.compile().deploy()
            whole = session.infer(images)
            chunked = session.infer(images, batch=1)
        assert np.array_equal(whole.logits, chunked.logits)
        assert np.array_equal(whole.logits, reference)

    def test_crosscheck_consistent(self, tiny_cnn, reference_logits):
        images, _ = reference_logits
        with make_session(tiny_cnn) as session:
            session.compile().deploy()
            session.infer(images)
            check = session.crosscheck()
        assert check.consistent, check.describe()

    def test_crosscheck_explicit_execution_scales_images(
        self, tiny_cnn, reference_logits
    ):
        """Passing a multi-image execution explicitly must not assume 1 image."""
        images, _ = reference_logits
        with make_session(tiny_cnn) as session:
            session.compile().deploy()
            result = session.infer(images)
            check = session.crosscheck(result.execution)
        assert check.consistent, check.describe()

    def test_synthetic_run_matches_legacy_scheduler(self, tiny_cnn):
        """Warm resident execution == cold shared execution, byte for byte."""
        from repro.core.compiler import CompilerConfig, compile_model
        from repro.nn.stats import model_layer_specs
        from repro.runtime.plan import build_execution_plan

        model, input_shape = tiny_cnn
        with make_session(tiny_cnn, seed=3) as session:
            session.compile().deploy()
            warm = session.run()
        specs = model_layer_specs(model, input_shape)
        compiled = compile_model(
            specs, CompilerConfig(activation_bits=4), emit_programs=True
        )
        accelerator = Accelerator()
        plan = build_execution_plan(compiled, accelerator=accelerator, base_seed=3)
        cold = accelerator.execute_plan(plan)
        assert warm.total_stats == cold.total_stats
        assert warm.checksum == cold.checksum


class TestReport:
    def test_report_splits_deploy_from_per_request(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        images = images_rng.uniform(0, 1, (2,) + input_shape)
        with make_session(tiny_cnn) as session:
            session.compile().deploy()
            session.infer(images)
            session.infer(images)
            report = session.report()
        assert report.requests == 2
        assert report.images == 4
        assert report.cost.deploy_energy_uj > 0
        assert report.cost.per_request_energy_uj > 0
        # Identical inputs: the mean per-request energy equals one request's.
        one = report.records[0].execution.energy_uj
        assert report.cost.per_request_energy_uj == pytest.approx(one)

    def test_amortization_spreads_deploy_cost(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        images = images_rng.uniform(0, 1, (1,) + input_shape)
        with make_session(tiny_cnn) as session:
            session.compile().deploy()
            session.infer(images)
            cost = session.report().cost
        assert cost.amortized_energy_uj(1) == pytest.approx(
            cost.deploy_energy_uj + cost.per_request_energy_uj
        )
        assert cost.amortized_energy_uj(1000) < cost.amortized_energy_uj(1)
        assert cost.amortized_energy_uj(1000) == pytest.approx(
            cost.per_request_energy_uj, rel=1e-2
        )
        assert cost.amortized_latency_ms(10) < cost.amortized_latency_ms(1)

    def test_report_text_names_both_costs(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        images = images_rng.uniform(0, 1, (1,) + input_shape)
        with make_session(tiny_cnn) as session:
            session.compile().deploy()
            session.infer(images)
            text = session.report().to_text()
        assert "deploy cost" in text
        assert "per-request cost" in text
        assert "amortized energy / request" in text
        assert "warm dispatches" in text


class TestErrorPaths:
    def test_oversubscribed_deploy_raises(self, tiny_cnn):
        arch = ArchitectureConfig(aps_per_tile=2, tiles_per_bank=1, num_banks=1)
        with make_session(tiny_cnn, arch=arch, auto_size=False) as session:
            session.compile()
            with pytest.raises(CapacityError, match="oversubscribed"):
                session.deploy()

    def test_auto_size_grows_the_accelerator(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        arch = ArchitectureConfig(aps_per_tile=2, tiles_per_bank=1, num_banks=1)
        images = images_rng.uniform(0, 1, (1,) + input_shape)
        with make_session(tiny_cnn, arch=arch) as session:
            session.compile().deploy()
            assert session.accelerator.num_aps > arch.total_aps
            result = session.infer(images)
        reference = quantized_reference_forward(
            model, images, input_shape=input_shape, bits=4
        )
        assert np.array_equal(result.logits, reference)

    def test_explicit_accelerator_is_never_silently_replaced(self, tiny_cnn):
        """A caller-supplied accelerator too small for the resident deploy
        raises loudly (its ledgers/interconnect are the caller's), even with
        auto_size on."""
        arch = ArchitectureConfig(aps_per_tile=2, tiles_per_bank=1, num_banks=1)
        accelerator = Accelerator(config=arch)
        session = Session(
            model=tiny_cnn[0], input_shape=tiny_cnn[1], accelerator=accelerator
        )
        with session:
            session.compile()
            with pytest.raises(CapacityError, match="oversubscribed"):
                session.deploy()

    def test_explicit_accelerator_that_fits_is_used(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        accelerator = Accelerator()
        with Session(
            model=model, input_shape=input_shape, accelerator=accelerator
        ) as session:
            session.compile().deploy()
            session.infer(images_rng.uniform(0, 1, (1,) + input_shape))
        assert session.accelerator is accelerator
        assert accelerator.tile_stats()  # the caller's ledgers were populated

    def test_slice_sampled_session_rejects_infer(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        with make_session(tiny_cnn, slices=1) as session:
            session.compile().deploy()
            with pytest.raises(SessionStateError, match="slice"):
                session.infer(images_rng.uniform(0, 1, (1,) + input_shape))
            # ... but the synthetic path still serves requests.
            execution = session.run()
        assert execution.checksum != 0

    def test_layer_truncated_session_rejects_infer(self, tiny_cnn, images_rng):
        model, input_shape = tiny_cnn
        with make_session(tiny_cnn, layers=1) as session:
            session.compile().deploy()
            with pytest.raises(SessionStateError, match="layers"):
                session.infer(images_rng.uniform(0, 1, (1,) + input_shape))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SessionConfig(bits=0)
        with pytest.raises(ConfigurationError):
            SessionConfig(slices=0)
        with pytest.raises(ConfigurationError):
            SessionConfig(layers=0)


class TestDeprecationShims:
    def test_run_inference_warns_and_matches_session(self, tiny_cnn, images_rng):
        from repro.inference import run_inference

        model, input_shape = tiny_cnn
        images = images_rng.uniform(0, 1, (2,) + input_shape)
        with pytest.warns(DeprecationWarning, match="Session"):
            legacy = run_inference(model, images, bits=4)
        with make_session(tiny_cnn) as session:
            session.compile().deploy()
            modern = session.infer(images)
        # Byte-identical logits and CAM counters between old and new paths.
        assert np.array_equal(legacy.logits, modern.logits)
        assert legacy.execution.total_stats == modern.execution.total_stats
        assert legacy.checksum == modern.checksum

    def test_top_level_crosscheck_execution_warns(self, tiny_cnn, images_rng):
        import repro

        model, input_shape = tiny_cnn
        images = images_rng.uniform(0, 1, (1,) + input_shape)
        with make_session(tiny_cnn) as session:
            session.compile().deploy()
            result = session.infer(images)
            with pytest.warns(DeprecationWarning, match="Session.crosscheck"):
                check = repro.crosscheck_execution(
                    session.plan, result.execution, images=result.images
                )
        assert check.consistent, check.describe()

    def test_registry_name_still_works_through_shim(self, images_rng):
        from repro.inference import run_inference

        images = images_rng.uniform(0, 1, (1, 3, 32, 32))
        with pytest.warns(DeprecationWarning):
            result = run_inference(
                "vgg9", images, bits=4, width=1 / 32, sparsity=0.85, rng=0
            )
        assert result.model == "vgg9"
        assert result.logits.shape == (1, 10)


class TestServeHelper:
    def test_serve_loops_batches_and_reports(self, tiny_cnn, images_rng):
        from repro.session import serve

        model, input_shape = tiny_cnn
        batches = [
            images_rng.uniform(0, 1, (1,) + input_shape) for _ in range(3)
        ]
        report = serve(model, batches, input_shape=input_shape, bits=4)
        assert report.requests == 3
        assert report.images == 3
        assert report.cost.per_request_energy_uj > 0
