"""Tests for the hardware-aware layer allocator."""

import pytest

from repro.arch.allocator import (
    AllocationPlan,
    LayerDemand,
    allocate_layer,
    allocate_model,
)
from repro.arch.config import ArchitectureConfig
from repro.errors import CapacityError, ConfigurationError


class TestLayerDemand:
    def test_full_parallelism(self):
        demand = LayerDemand(name="l", row_tiles=4, channel_groups=2)
        assert demand.aps_for_full_parallelism == 8

    def test_output_limit_defaults_to_one(self):
        demand = LayerDemand(name="l", row_tiles=1, channel_groups=1)
        assert demand.output_parallelism_limit == 1

    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            LayerDemand(name="l", row_tiles=0, channel_groups=1)
        with pytest.raises(ConfigurationError):
            LayerDemand(name="l", row_tiles=1, channel_groups=0)


class TestAllocateLayer:
    def test_row_tiles_must_fit(self):
        demand = LayerDemand(name="big", row_tiles=50, channel_groups=1)
        with pytest.raises(CapacityError):
            allocate_layer(demand, available_aps=49)

    def test_channel_groups_parallel_when_possible(self):
        demand = LayerDemand(name="l", row_tiles=2, channel_groups=3)
        allocation = allocate_layer(demand, available_aps=12)
        assert allocation.parallel_channel_groups == 3
        assert allocation.sequential_rounds == 1

    def test_channel_groups_serialized_when_starved(self):
        demand = LayerDemand(name="l", row_tiles=4, channel_groups=4)
        allocation = allocate_layer(demand, available_aps=8)
        assert allocation.parallel_channel_groups == 2
        assert allocation.sequential_rounds == 2

    def test_output_parallelism_uses_idle_aps(self):
        demand = LayerDemand(name="deep", row_tiles=1, channel_groups=1, max_output_tiles=512)
        allocation = allocate_layer(demand, available_aps=49, max_output_tiles=8)
        assert allocation.parallel_output_tiles == 8
        assert allocation.aps_used == 8
        assert allocation.compute_parallelism == 8

    def test_output_parallelism_bounded_by_available(self):
        demand = LayerDemand(name="deep", row_tiles=1, channel_groups=1, max_output_tiles=512)
        allocation = allocate_layer(demand, available_aps=3, max_output_tiles=8)
        assert allocation.parallel_output_tiles == 3

    def test_output_parallelism_disabled(self):
        demand = LayerDemand(name="deep", row_tiles=1, channel_groups=1, max_output_tiles=512)
        allocation = allocate_layer(
            demand, available_aps=49, use_idle_aps_for_output_parallelism=False
        )
        assert allocation.parallel_output_tiles == 1

    def test_tile_budget_shared_with_channel_groups(self):
        demand = LayerDemand(
            name="deep", row_tiles=1, channel_groups=2, max_output_tiles=512
        )
        allocation = allocate_layer(demand, available_aps=49, max_output_tiles=8)
        assert allocation.parallel_channel_groups == 2
        assert allocation.parallel_output_tiles == 4
        assert allocation.aps_used == 8


class TestAllocateModel:
    def _demands(self):
        return [
            LayerDemand(name="conv1", row_tiles=49, channel_groups=1, max_output_tiles=64),
            LayerDemand(name="conv2", row_tiles=13, channel_groups=1, max_output_tiles=64),
            LayerDemand(name="conv3", row_tiles=1, channel_groups=2, max_output_tiles=512),
        ]

    def test_default_budget_is_worst_layer(self):
        plan = allocate_model(self._demands())
        assert plan.available_aps == 49
        assert plan.max_row_tiles == 49

    def test_budget_from_architecture(self):
        config = ArchitectureConfig(aps_per_tile=8, tiles_per_bank=8, num_banks=2)
        plan = allocate_model(self._demands(), config=config)
        assert plan.available_aps == config.total_aps

    def test_by_name_lookup(self):
        plan = allocate_model(self._demands())
        assert plan.by_name()["conv3"].demand.name == "conv3"

    def test_max_aps_used(self):
        plan = allocate_model(self._demands())
        assert plan.max_aps_used >= 49

    def test_empty_plan(self):
        plan = AllocationPlan()
        assert plan.max_aps_used == 0
        assert plan.max_row_tiles == 0


class TestRowTilingBeyondOneAP:
    """A layer whose output positions exceed one AP's rows must row-tile."""

    def test_row_tiles_spread_over_aps(self):
        # 100x100 output positions on 256-row APs: ceil(10000/256) = 40 tiles.
        demand = LayerDemand(name="wide", row_tiles=40, channel_groups=1)
        allocation = allocate_layer(demand, available_aps=40)
        assert allocation.aps_used == 40
        assert allocation.sequential_rounds == 1
        assert allocation.utilization == 1.0

    def test_row_tiles_with_channel_groups_share_budget(self):
        demand = LayerDemand(name="wide", row_tiles=40, channel_groups=4)
        allocation = allocate_layer(demand, available_aps=80)
        # Two channel groups fit next to the 40 row tiles; the rest serialize.
        assert allocation.parallel_channel_groups == 2
        assert allocation.sequential_rounds == 2
        assert allocation.aps_used == 80

    def test_exact_fit_boundary(self):
        demand = LayerDemand(name="edge", row_tiles=49, channel_groups=1)
        allocation = allocate_layer(demand, available_aps=49)
        assert allocation.aps_used == 49
        with pytest.raises(CapacityError):
            allocate_layer(
                LayerDemand(name="edge", row_tiles=49, channel_groups=1),
                available_aps=48,
            )


class TestDegenerateSingleAPPlans:
    """1-AP, FC-only plans: utilization and compute_parallelism stay sane."""

    def test_single_fc_layer_on_one_ap(self):
        demand = LayerDemand(name="fc", row_tiles=1, channel_groups=1)
        plan = allocate_model([demand], available_aps=1)
        allocation = plan.layers[0]
        assert allocation.aps_used == 1
        assert allocation.compute_parallelism == 1
        assert allocation.sequential_rounds == 1
        assert allocation.utilization == 1.0
        assert plan.max_aps_used == 1

    def test_fc_stack_on_one_ap(self):
        demands = [
            LayerDemand(name=f"fc{i}", row_tiles=1, channel_groups=1)
            for i in range(3)
        ]
        plan = allocate_model(demands, available_aps=1)
        assert all(layer.utilization == 1.0 for layer in plan.layers)
        assert all(layer.compute_parallelism == 1 for layer in plan.layers)

    def test_fc_with_serialized_channel_groups(self):
        # Storage forces 4 channel groups but only one AP exists: all four
        # run as sequential rounds on the same AP, utilization 1/4.
        demand = LayerDemand(name="fc", row_tiles=1, channel_groups=4)
        allocation = allocate_layer(demand, available_aps=1)
        assert allocation.parallel_channel_groups == 1
        assert allocation.sequential_rounds == 4
        assert allocation.compute_parallelism == 1
        assert allocation.utilization == pytest.approx(0.25)

    def test_output_parallelism_never_exceeds_limit_on_one_ap(self):
        demand = LayerDemand(
            name="fc", row_tiles=1, channel_groups=1, max_output_tiles=10
        )
        allocation = allocate_layer(demand, available_aps=1, max_output_tiles=8)
        assert allocation.parallel_output_tiles == 1
        assert allocation.utilization == 1.0


class TestOversubscribedConfigs:
    """Oversubscription surfaces as CapacityError (a MappingError)."""

    def test_allocate_model_oversubscribed(self):
        demands = [
            LayerDemand(name="ok", row_tiles=2, channel_groups=1),
            LayerDemand(name="too-big", row_tiles=8, channel_groups=1),
        ]
        with pytest.raises(CapacityError):
            allocate_model(demands, available_aps=4)

    def test_architecture_budget_oversubscribed(self):
        config = ArchitectureConfig(aps_per_tile=2, tiles_per_bank=1, num_banks=1)
        demand = LayerDemand(name="huge", row_tiles=3, channel_groups=1)
        with pytest.raises(CapacityError):
            allocate_model([demand], config=config)

    def test_capacity_error_is_a_mapping_error(self):
        from repro.errors import MappingError

        demand = LayerDemand(name="huge", row_tiles=2, channel_groups=1)
        with pytest.raises(MappingError):
            allocate_layer(demand, available_aps=1)

    def test_invalid_budget_still_configuration_error(self):
        demand = LayerDemand(name="l", row_tiles=1, channel_groups=1)
        with pytest.raises(ConfigurationError):
            allocate_layer(demand, available_aps=0)
