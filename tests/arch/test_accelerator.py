"""Tests for the bank/tile/AP hierarchy."""

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.config import APConfig, ArchitectureConfig
from repro.arch.interconnect import TransferScope
from repro.errors import CapacityError


@pytest.fixture
def accelerator(tiny_architecture) -> Accelerator:
    return Accelerator(tiny_architecture)


class TestHierarchy:
    def test_structure_counts(self, accelerator, tiny_architecture):
        assert accelerator.num_aps == tiny_architecture.total_aps
        addresses = list(accelerator.ap_addresses())
        assert len(addresses) == tiny_architecture.total_aps
        assert len(set(addresses)) == tiny_architecture.total_aps

    def test_validate_address(self, accelerator):
        accelerator.validate_address((0, 0, 0))
        with pytest.raises(CapacityError):
            accelerator.validate_address((5, 0, 0))
        with pytest.raises(CapacityError):
            accelerator.validate_address((0, 9, 0))
        with pytest.raises(CapacityError):
            accelerator.validate_address((0, 0, 9))

    def test_describe_mentions_dimensions(self, accelerator):
        text = accelerator.describe()
        assert "APs" in text
        assert "64x64" in text


class TestFunctionalAPs:
    def test_lazily_instantiated_and_cached(self, accelerator):
        ap_a = accelerator.functional_ap((0, 0, 0))
        ap_b = accelerator.functional_ap((0, 0, 0))
        assert ap_a is ap_b
        assert ap_a.rows == accelerator.config.ap.rows

    def test_different_addresses_get_different_aps(self, accelerator):
        assert accelerator.functional_ap((0, 0, 0)) is not accelerator.functional_ap((0, 0, 1))


class TestPooledLeases:
    """The accelerator is the runtime's AP provider: reset, sized leases."""

    def test_lease_resets_state_and_counters(self, accelerator):
        ap = accelerator.lease_ap((0, 0, 0), rows=16, columns=8)
        ap.add_vectors([1] * 16, [2] * 16, width=4)
        assert ap.stats.search_phases > 0
        again = accelerator.lease_ap((0, 0, 0), rows=16, columns=8)
        assert again is ap  # pooled, not rebuilt
        assert again.stats.search_phases == 0
        assert not again.array._bits.any()
        assert not again.array._port_positions.any()

    def test_lease_matches_fresh_ap_counters(self, accelerator):
        from repro.ap.core import AssociativeProcessor

        leased = accelerator.lease_ap((0, 0, 1), rows=12, columns=8)
        fresh = AssociativeProcessor(
            rows=12, columns=8,
            technology=accelerator.config.technology,
            backend=accelerator.backend,
        )
        a, b = list(range(12)), list(range(12, 0, -1))
        leased.add_vectors(a, b, width=6)
        fresh.add_vectors(a, b, width=6)
        assert leased.stats == fresh.stats

    def test_lease_rebuilds_on_geometry_change(self, accelerator):
        first = accelerator.lease_ap((0, 0, 0), rows=16, columns=8)
        second = accelerator.lease_ap((0, 0, 0), rows=32, columns=8)
        assert second is not first
        assert second.rows == 32

    def test_lease_rebuilds_on_backend_change(self, accelerator):
        first = accelerator.lease_ap((0, 0, 0), backend="vectorized")
        second = accelerator.lease_ap((0, 0, 0), backend="reference")
        assert second is not first
        assert second.backend.name == "reference"

    def test_lease_rejects_oversized_rows(self, accelerator):
        with pytest.raises(CapacityError):
            accelerator.lease_ap((0, 0, 0), rows=accelerator.config.ap.rows + 1)

    def test_lease_rejects_oversized_columns(self, accelerator):
        with pytest.raises(CapacityError):
            accelerator.lease_ap((0, 0, 0), columns=accelerator.config.ap.columns + 1)

    def test_release_aps_empties_the_pool(self, accelerator):
        accelerator.lease_ap((0, 0, 0))
        accelerator.lease_ap((0, 0, 1))
        assert accelerator.release_aps() == 2
        assert accelerator.release_aps() == 0


class TestRuntimeLedgers:
    def test_record_tile_stats_aggregates_per_tile(self, accelerator):
        from repro.cam.stats import CAMStats

        accelerator.record_tile_stats((0, 0, 0), CAMStats(search_phases=3))
        accelerator.record_tile_stats((0, 0, 1), CAMStats(search_phases=4))
        accelerator.record_tile_stats((0, 1, 0), CAMStats(write_phases=5))
        ledger = accelerator.tile_stats()
        assert ledger[(0, 0)].search_phases == 7
        assert ledger[(0, 1)].write_phases == 5
        assert accelerator.total_stats.search_phases == 7
        assert accelerator.total_stats.write_phases == 5

    def test_charge_movement_accumulates_per_scope(self, accelerator):
        cost = accelerator.charge_movement(128.0, TransferScope.INTRA_TILE)
        assert cost.bits == 128.0
        accelerator.charge_movement(64.0, TransferScope.INTRA_TILE)
        ledger = accelerator.movement_ledger()
        assert ledger[TransferScope.INTRA_TILE].bits == 192.0
        accelerator.reset_ledgers()
        assert not accelerator.movement_ledger()


class TestTransferScopes:
    def test_intra_tile(self, accelerator):
        assert accelerator.transfer_scope((0, 0, 0), (0, 0, 1)) is TransferScope.INTRA_TILE

    def test_intra_bank(self, accelerator):
        assert accelerator.transfer_scope((0, 0, 0), (0, 1, 0)) is TransferScope.INTRA_BANK

    def test_global_scope(self):
        config = ArchitectureConfig(ap=APConfig(rows=16, columns=16), num_banks=2)
        accelerator = Accelerator(config)
        assert accelerator.transfer_scope((0, 0, 0), (1, 0, 0)) is TransferScope.GLOBAL
