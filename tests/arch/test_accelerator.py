"""Tests for the bank/tile/AP hierarchy."""

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.config import APConfig, ArchitectureConfig
from repro.arch.interconnect import TransferScope
from repro.errors import CapacityError


@pytest.fixture
def accelerator(tiny_architecture) -> Accelerator:
    return Accelerator(tiny_architecture)


class TestHierarchy:
    def test_structure_counts(self, accelerator, tiny_architecture):
        assert accelerator.num_aps == tiny_architecture.total_aps
        addresses = list(accelerator.ap_addresses())
        assert len(addresses) == tiny_architecture.total_aps
        assert len(set(addresses)) == tiny_architecture.total_aps

    def test_validate_address(self, accelerator):
        accelerator.validate_address((0, 0, 0))
        with pytest.raises(CapacityError):
            accelerator.validate_address((5, 0, 0))
        with pytest.raises(CapacityError):
            accelerator.validate_address((0, 9, 0))
        with pytest.raises(CapacityError):
            accelerator.validate_address((0, 0, 9))

    def test_describe_mentions_dimensions(self, accelerator):
        text = accelerator.describe()
        assert "APs" in text
        assert "64x64" in text


class TestFunctionalAPs:
    def test_lazily_instantiated_and_cached(self, accelerator):
        ap_a = accelerator.functional_ap((0, 0, 0))
        ap_b = accelerator.functional_ap((0, 0, 0))
        assert ap_a is ap_b
        assert ap_a.rows == accelerator.config.ap.rows

    def test_different_addresses_get_different_aps(self, accelerator):
        assert accelerator.functional_ap((0, 0, 0)) is not accelerator.functional_ap((0, 0, 1))


class TestTransferScopes:
    def test_intra_tile(self, accelerator):
        assert accelerator.transfer_scope((0, 0, 0), (0, 0, 1)) is TransferScope.INTRA_TILE

    def test_intra_bank(self, accelerator):
        assert accelerator.transfer_scope((0, 0, 0), (0, 1, 0)) is TransferScope.INTRA_BANK

    def test_global_scope(self):
        config = ArchitectureConfig(ap=APConfig(rows=16, columns=16), num_banks=2)
        accelerator = Accelerator(config)
        assert accelerator.transfer_scope((0, 0, 0), (1, 0, 0)) is TransferScope.GLOBAL
