"""Tests for architecture configuration dataclasses."""

import pytest

from repro.arch.config import APConfig, ArchitectureConfig, PAPER_ARCHITECTURE
from repro.errors import ConfigurationError
from repro.rtm.timing import RTMTechnology


class TestAPConfig:
    def test_paper_defaults(self):
        config = APConfig()
        assert config.rows == 256
        assert config.columns == 256
        assert config.usable_columns == 254

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            APConfig(rows=0)
        with pytest.raises(ConfigurationError):
            APConfig(columns=-1)

    def test_reserved_columns_bounds(self):
        with pytest.raises(ConfigurationError):
            APConfig(columns=8, reserved_columns=8)


class TestArchitectureConfig:
    def test_total_aps(self):
        config = ArchitectureConfig(aps_per_tile=4, tiles_per_bank=2, num_banks=3)
        assert config.total_aps == 24
        assert config.total_rows == 24 * 256

    def test_channels_per_column_group(self):
        config = ArchitectureConfig(activation_bits=4)
        assert config.channels_per_column_group == 16
        config8 = ArchitectureConfig(activation_bits=8)
        assert config8.channels_per_column_group == 8

    def test_activation_bits_cannot_exceed_domains(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(
                technology=RTMTechnology(domains_per_nanowire=4), activation_bits=8
            )

    def test_with_activation_bits(self):
        config = ArchitectureConfig(activation_bits=4)
        other = config.with_activation_bits(8)
        assert other.activation_bits == 8
        assert other.ap == config.ap
        assert config.activation_bits == 4  # original unchanged

    def test_with_total_aps_grows_banks(self):
        config = ArchitectureConfig(aps_per_tile=8, tiles_per_bank=8, num_banks=1)
        grown = config.with_total_aps(200)
        assert grown.total_aps >= 200
        assert grown.aps_per_tile == 8

    def test_invalid_hierarchy(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(num_banks=0)
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(instruction_cache_energy_fj=-1)

    def test_paper_architecture_constant(self):
        assert PAPER_ARCHITECTURE.ap.rows == 256
        assert PAPER_ARCHITECTURE.technology.domains_per_nanowire == 64
