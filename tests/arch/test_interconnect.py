"""Tests for the interconnect cost model."""

import pytest

from repro.arch.config import ArchitectureConfig
from repro.arch.interconnect import InterconnectModel, TransferScope, ZERO_TRANSFER
from repro.errors import ConfigurationError
from repro.rtm.timing import RTMTechnology


class TestInterconnectModel:
    def test_paper_default_is_1pj_per_bit(self):
        model = InterconnectModel.from_architecture(ArchitectureConfig())
        for scope in TransferScope:
            assert model.energy_per_bit(scope) == pytest.approx(1000.0)

    def test_from_architecture_uses_technology(self):
        config = ArchitectureConfig(
            technology=RTMTechnology(movement_energy_fj_per_bit=500.0)
        )
        model = InterconnectModel.from_architecture(config)
        assert model.energy_per_bit(TransferScope.GLOBAL) == pytest.approx(500.0)

    def test_transfer_energy_scales_with_bits(self):
        model = InterconnectModel()
        small = model.transfer(100, TransferScope.INTRA_TILE)
        large = model.transfer(1000, TransferScope.INTRA_TILE)
        assert large.energy_fj == pytest.approx(small.energy_fj * 10)

    def test_transfer_latency_uses_bus(self):
        model = InterconnectModel(bus_width_bits=256, bus_frequency_ghz=1.0)
        cost = model.transfer(2560, TransferScope.GLOBAL)
        assert cost.latency_ns == pytest.approx(10.0)

    def test_zero_transfer(self):
        model = InterconnectModel()
        cost = model.transfer(0)
        assert cost.energy_fj == 0.0
        assert cost.latency_ns == 0.0
        assert ZERO_TRANSFER.bits == 0.0

    def test_negative_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            InterconnectModel().transfer(-1)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            InterconnectModel(bus_width_bits=0)
        with pytest.raises(ConfigurationError):
            InterconnectModel(global_energy_fj_per_bit=-5)

    def test_merge(self):
        model = InterconnectModel()
        a = model.transfer(100)
        b = model.transfer(200)
        merged = a.merge(b)
        assert merged.bits == 300
        assert merged.energy_fj == pytest.approx(a.energy_fj + b.energy_fj)
