"""Tests for the plain-text reporting helpers."""

from repro.eval.reporting import format_ratio, format_table


class TestFormatTable:
    def test_basic_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", None]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-" in lines[2]
        assert "1" in lines[3]
        assert lines[4].strip().endswith("-")

    def test_number_formatting(self):
        text = format_table(["v"], [[1234.5678], [0.1234], [12.345]])
        assert "1235" in text or "1234" in text
        assert "0.123" in text
        assert "12.35" in text or "12.34" in text

    def test_handles_more_cells_than_headers(self):
        text = format_table(["only"], [[1, 2, 3]])
        assert "1" in text


class TestFormatRatio:
    def test_ratio(self):
        assert format_ratio(15.0, 2.0) == "7.5x"

    def test_zero_denominator(self):
        assert format_ratio(1.0, 0.0) == "inf"
