"""Tests for the end-to-end inference equivalence harness."""

import numpy as np
import pytest

from repro.eval.equivalence import check_inference_equivalence
from repro.inference import run_inference
from repro.nn.layers import Flatten, ReLU, TernaryConv2d, TernaryLinear
from repro.nn.model import Sequential


@pytest.fixture(scope="module")
def tiny_model():
    model = Sequential(
        [
            TernaryConv2d(2, 3, kernel_size=3, stride=1, padding=1, sparsity=0.5, rng=4),
            ReLU(),
            Flatten(),
            TernaryLinear(3 * 6 * 6, 5, sparsity=0.5, rng=5),
        ],
        name="eq-model",
    )
    return model, (2, 6, 6)


def test_consistent_run_reports_identical(tiny_model):
    model, input_shape = tiny_model
    images = np.random.default_rng(0).uniform(0.0, 1.0, size=(2,) + input_shape)
    result = run_inference(model, images, bits=4)
    verdict = check_inference_equivalence(model, images, result, bits=4)
    assert verdict.consistent
    assert verdict.logits_identical
    assert verdict.predictions_match
    assert verdict.max_abs_diff == 0.0
    assert "byte-identical" in verdict.describe()
    assert verdict.images == 2


def test_divergence_is_reported(tiny_model):
    """A corrupted result must be flagged with a localised diff magnitude."""
    model, input_shape = tiny_model
    images = np.random.default_rng(1).uniform(0.0, 1.0, size=(1,) + input_shape)
    result = run_inference(model, images, bits=4)
    result.logits = result.logits + 0.25
    verdict = check_inference_equivalence(model, images, result, bits=4)
    assert not verdict.consistent
    assert verdict.max_abs_diff == pytest.approx(0.25)
    assert "MISMATCH" in verdict.describe()
