"""Tests for the Table II generator (experiments E3/E8)."""

import pytest

from repro.eval.table2 import Table2, Table2Entry, generate_table2


@pytest.fixture(scope="module")
def vgg9_table() -> Table2:
    """A reduced Table II (VGG-9 only, sampled slices) to keep test time low."""
    return generate_table2(
        benchmarks=(("vgg9", (0.85,)),),
        activation_precisions=(4, 8),
        max_slices_per_layer=8,
        rng=0,
    )


class TestGenerateTable2:
    def test_contains_rtm_and_crossbar_rows(self, vgg9_table):
        systems = {entry.system for entry in vgg9_table.entries}
        assert "RTM-AP (unroll+CSE)" in systems
        assert "Crossbar (NeuroSim-style)" in systems

    def test_rtm_row_fields_filled(self, vgg9_table):
        entry = vgg9_table.entry("VGG-9/CIFAR10", "RTM-AP (unroll+CSE)")
        assert entry.energy_uj_4bit > 0
        assert entry.energy_uj_8bit > entry.energy_uj_4bit
        assert entry.latency_ms_4bit > 0
        assert entry.arrays == 4
        assert entry.adds_unroll_k > entry.adds_cse_k > 0

    def test_crossbar_row_energy_larger_than_rtm(self, vgg9_table):
        ours = vgg9_table.entry("VGG-9/CIFAR10", "RTM-AP (unroll+CSE)")
        baseline = vgg9_table.entry("VGG-9/CIFAR10", "Crossbar (NeuroSim-style)")
        assert baseline.energy_uj_4bit > ours.energy_uj_4bit
        assert baseline.energy_uj_8bit > ours.energy_uj_8bit

    def test_improvement_ratios(self, vgg9_table):
        ratios = vgg9_table.improvement_over_crossbar("VGG-9/CIFAR10", activation_bits=4)
        assert ratios["energy"] > 1.0
        assert ratios["energy_efficiency"] == pytest.approx(
            ratios["energy"] * ratios["latency"]
        )

    def test_text_rendering(self, vgg9_table):
        text = vgg9_table.to_text()
        assert "VGG-9/CIFAR10" in text
        assert "#arrays" in text

    def test_missing_entry_raises(self, vgg9_table):
        with pytest.raises(KeyError):
            vgg9_table.entry("VGG-9/CIFAR10", "TPU")

    def test_deepcam_row_only_for_vgg11(self, vgg9_table):
        systems = {entry.system for entry in vgg9_table.entries}
        assert "DeepCAM-style" not in systems

    def test_entry_as_row_length_matches_headers(self, vgg9_table):
        for entry in vgg9_table.entries:
            assert len(entry.as_row()) == len(Table2.HEADERS)
