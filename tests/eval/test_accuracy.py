"""Tests for the accuracy-vs-precision experiment (experiment E9)."""

import pytest

from repro.eval.accuracy import AccuracySummary, run_accuracy_experiment
from repro.nn.datasets import make_cluster_classification


@pytest.fixture(scope="module")
def summary() -> AccuracySummary:
    dataset = make_cluster_classification(
        num_classes=6, features=32, train_per_class=50, test_per_class=25, noise=0.6, rng=3
    )
    return run_accuracy_experiment(epochs=12, seed=3, dataset=dataset, hash_length=24)


class TestAccuracyExperiment:
    def test_all_configurations_present(self, summary):
        expected = {"fp32", "ternary", "ternary-a8", "ternary-a4", "crossbar-adc5", "deepcam-hash"}
        assert expected.issubset(summary.accuracies)

    def test_fp_beats_chance(self, summary):
        assert summary.fp_accuracy > 0.5

    def test_ternary_4bit_close_to_fp(self, summary):
        """Paper claim: 4-bit activations with ternary weights retain accuracy."""
        assert summary.degradation("ternary-a4") < 0.12

    def test_ternary_8bit_close_to_fp(self, summary):
        assert summary.degradation("ternary-a8") < 0.12

    def test_deepcam_hash_loses_more_than_rtm_ap(self, summary):
        """The hashed approximation should lose at least as much accuracy as the exact AP."""
        assert summary.accuracies["deepcam-hash"] <= summary.accuracies["ternary-a4"] + 0.02

    def test_crossbar_adc_does_not_beat_exact(self, summary):
        assert summary.accuracies["crossbar-adc5"] <= summary.accuracies["ternary-a8"] + 0.02

    def test_getitem_and_text(self, summary):
        assert summary["fp32"] == summary.fp_accuracy
        text = summary.to_text()
        assert "fp32" in text
        assert "%" in text
