"""Tests for the Fig. 4 generator (experiment E4)."""

import pytest

from repro.eval.fig4 import generate_fig4


@pytest.fixture(scope="module")
def fig4_data():
    """ResNet-18 layer-by-layer data with aggressive slice sampling for speed."""
    return generate_fig4("resnet18", activation_bits=4, max_slices_per_layer=4, rng=0)


class TestGenerateFig4:
    def test_has_20_convolution_layers(self, fig4_data):
        assert len(fig4_data.layers) == 20

    def test_layer_indices_sequential(self, fig4_data):
        assert [layer.index for layer in fig4_data.layers] == list(range(1, 21))

    def test_cse_never_worse_than_unroll(self, fig4_data):
        for layer in fig4_data.layers:
            assert layer.unroll_cse.energy_uj <= layer.unroll.energy_uj * 1.001

    def test_first_layer_benefits_most_from_cse(self, fig4_data):
        """Paper: the 7x7 stem allows the most subexpression elimination."""
        first = fig4_data.layers[0].cse_energy_saving
        rest = [layer.cse_energy_saving for layer in fig4_data.layers[1:]]
        assert first >= max(rest) - 0.05

    def test_early_layers_faster_than_crossbar(self, fig4_data):
        first = fig4_data.layers[0]
        assert first.unroll_cse.latency_ms < first.crossbar.latency_ms

    def test_deep_layers_slower_than_crossbar(self, fig4_data):
        """Paper: layers 16-20 are slower on the RTM-AP due to low row utilization."""
        deep = fig4_data.layers[15:]
        slower = [not layer.rtm_faster_than_crossbar for layer in deep if "downsample" not in layer.name]
        assert any(slower)

    def test_totals_consistent(self, fig4_data):
        totals = fig4_data.totals()
        assert totals["cse_energy_uj"] <= totals["unroll_energy_uj"]
        assert totals["crossbar_energy_uj"] > totals["cse_energy_uj"]

    def test_text_tables_render(self, fig4_data):
        text = fig4_data.to_text()
        assert "Fig. 4" in text
        assert "End-to-end totals" in text
