"""Tests for RTM technology parameters."""

import pytest

from repro.errors import ConfigurationError
from repro.rtm.timing import DEFAULT_RTM_TECHNOLOGY, RTMTechnology


class TestRTMTechnology:
    def test_paper_defaults(self):
        technology = RTMTechnology()
        assert technology.domains_per_nanowire == 64
        assert technology.search_energy_fj_per_bit == pytest.approx(3.0)
        assert technology.search_latency_ns <= 0.2
        assert technology.movement_energy_fj_per_bit == pytest.approx(1000.0)
        assert technology.write_endurance_cycles == pytest.approx(1e16)

    def test_invalid_domains_rejected(self):
        with pytest.raises(ConfigurationError):
            RTMTechnology(domains_per_nanowire=0)

    def test_invalid_energy_rejected(self):
        with pytest.raises(ConfigurationError):
            RTMTechnology(search_energy_fj_per_bit=-1.0)

    def test_pass_latency_scales_with_phases(self):
        technology = RTMTechnology()
        assert technology.pass_latency_ns(10) == pytest.approx(
            10 * technology.phase_latency_ns
        )

    def test_inplace_add_latency_matches_paper(self):
        """8 phases at 0.1 ns = 0.8 ns per bit for the in-place adder (Sec. V-C)."""
        technology = RTMTechnology()
        assert technology.pass_latency_ns(8) == pytest.approx(0.8)
        assert technology.pass_latency_ns(10) == pytest.approx(1.0)

    def test_shift_cost(self):
        technology = RTMTechnology()
        latency, energy = technology.shift_cost(4)
        assert latency == pytest.approx(4 * technology.shift_latency_ns)
        assert energy == pytest.approx(4 * technology.shift_energy_fj)

    def test_default_instance_exists(self):
        assert DEFAULT_RTM_TECHNOLOGY.domains_per_nanowire == 64
