"""Test package (needed so duplicate basenames like test_stats.py collect cleanly)."""
