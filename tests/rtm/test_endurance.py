"""Tests for RTM write-endurance modelling."""

import pytest

from repro.errors import ConfigurationError
from repro.rtm.endurance import EnduranceTracker, estimate_lifetime
from repro.rtm.timing import RTMTechnology


class TestEstimateLifetime:
    def test_paper_argument_gives_about_31_years(self):
        """Sec. V-C: 2 columns/op, ~0.8 ns ops, 256 columns, 1e16 cycles -> ~31 years."""
        estimate = estimate_lifetime(
            writes_per_operation=2.0,
            operation_interval_ns=0.8,
            columns_sharing_load=256,
        )
        assert estimate.mean_rewrite_interval_ns == pytest.approx(102.4)
        assert 20.0 < estimate.lifetime_years < 45.0

    def test_longer_interval_longer_lifetime(self):
        short = estimate_lifetime(2.0, 0.8, 256)
        long = estimate_lifetime(2.0, 8.0, 256)
        assert long.lifetime_seconds > short.lifetime_seconds

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_lifetime(0.0, 0.8, 256)
        with pytest.raises(ConfigurationError):
            estimate_lifetime(2.0, 0.0, 256)
        with pytest.raises(ConfigurationError):
            estimate_lifetime(2.0, 0.8, 0)

    def test_endurance_limit_scales_lifetime(self):
        weak = estimate_lifetime(2.0, 0.8, 256, RTMTechnology(write_endurance_cycles=1e12))
        strong = estimate_lifetime(2.0, 0.8, 256, RTMTechnology(write_endurance_cycles=1e16))
        assert strong.lifetime_seconds == pytest.approx(weak.lifetime_seconds * 1e4)


class TestEnduranceTracker:
    def test_hottest_cell(self):
        tracker = EnduranceTracker()
        tracker.record_write(0, 1, bits=3)
        tracker.record_write(0, 2, bits=5)
        cell, writes = tracker.hottest_cell
        assert cell == (0, 2)
        assert writes == 5
        assert tracker.total_writes == 8

    def test_empty_tracker(self):
        tracker = EnduranceTracker()
        assert tracker.hottest_cell == ((0, 0), 0)
        assert tracker.wear_fraction() == 0.0
        assert tracker.lifetime_at_duty_cycle(1.0) == float("inf")

    def test_lifetime_extrapolation(self):
        tracker = EnduranceTracker(RTMTechnology(write_endurance_cycles=1e6))
        tracker.record_write(3, 4, bits=1000)
        lifetime = tracker.lifetime_at_duty_cycle(elapsed_seconds=1.0)
        assert lifetime == pytest.approx(1e3)

    def test_invalid_elapsed_rejected(self):
        tracker = EnduranceTracker()
        with pytest.raises(ConfigurationError):
            tracker.lifetime_at_duty_cycle(0.0)

    def test_negative_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            EnduranceTracker().record_write(0, 0, bits=-1)
