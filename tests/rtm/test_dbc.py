"""Tests for domain-wall block clusters."""

import numpy as np
import pytest

from repro.errors import CapacityError, SimulationError
from repro.rtm.dbc import DomainBlockCluster
from repro.rtm.timing import RTMTechnology


class TestDomainBlockCluster:
    def test_requires_at_least_one_track(self):
        with pytest.raises(CapacityError):
            DomainBlockCluster(0)

    def test_lockstep_shift_moves_all_tracks(self):
        cluster = DomainBlockCluster(4)
        steps = cluster.shift_to(5)
        assert steps == 5
        assert cluster.port_position == 5
        assert all(track.port_position == 5 for track in cluster.tracks)

    def test_write_and_read_row(self):
        cluster = DomainBlockCluster(3)
        cluster.write_row(2, [1, 0, 1])
        assert list(cluster.read_row(2)) == [1, 0, 1]

    def test_write_row_length_mismatch(self):
        cluster = DomainBlockCluster(3)
        with pytest.raises(SimulationError):
            cluster.write_row(0, [1, 0])

    def test_shift_out_of_range(self):
        cluster = DomainBlockCluster(2, RTMTechnology(domains_per_nanowire=8))
        with pytest.raises(CapacityError):
            cluster.shift_to(8)

    def test_aggregate_stats_counts_all_tracks(self):
        cluster = DomainBlockCluster(2)
        cluster.write_row(3, [1, 1])
        stats = cluster.aggregate_stats()
        assert stats.writes == 2
        assert stats.shifts == 6  # both tracks shifted by 3
