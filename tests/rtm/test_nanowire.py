"""Tests for the racetrack nanowire model."""

import numpy as np
import pytest

from repro.errors import CapacityError, SimulationError
from repro.rtm.nanowire import Nanowire, NanowireStats
from repro.rtm.timing import RTMTechnology


class TestNanowireBasics:
    def test_default_has_64_domains(self):
        assert Nanowire().num_domains == 64

    def test_initial_content_loaded(self):
        wire = Nanowire(initial_bits=np.array([1, 0, 1]))
        assert wire.peek(0) == 1
        assert wire.peek(1) == 0
        assert wire.peek(2) == 1

    def test_initial_content_too_long_rejected(self):
        technology = RTMTechnology(domains_per_nanowire=4)
        with pytest.raises(CapacityError):
            Nanowire(technology, initial_bits=np.ones(5, dtype=np.uint8))

    def test_write_then_read(self):
        wire = Nanowire()
        wire.write(10, 1)
        assert wire.read(10) == 1

    def test_write_rejects_non_bit(self):
        with pytest.raises(SimulationError):
            Nanowire().write(0, 2)

    def test_out_of_range_position_rejected(self):
        wire = Nanowire(RTMTechnology(domains_per_nanowire=8))
        with pytest.raises(CapacityError):
            wire.read(8)


class TestShifting:
    def test_shift_count_is_distance(self):
        wire = Nanowire()
        assert wire.shift_to(5) == 5
        assert wire.shift_to(2) == 3
        assert wire.port_position == 2

    def test_shifts_accumulate_in_stats(self):
        wire = Nanowire()
        wire.read(3)
        wire.write(7, 1)
        assert wire.stats.shifts == 3 + 4
        assert wire.stats.reads == 1
        assert wire.stats.writes == 1

    def test_shifts_to_does_not_move(self):
        wire = Nanowire()
        assert wire.shifts_to(9) == 9
        assert wire.port_position == 0


class TestBulkAccess:
    def test_load_and_dump(self):
        wire = Nanowire()
        wire.load(np.array([1, 1, 0, 1]), offset=2)
        dump = wire.dump()
        assert list(dump[2:6]) == [1, 1, 0, 1]

    def test_load_out_of_range(self):
        wire = Nanowire(RTMTechnology(domains_per_nanowire=4))
        with pytest.raises(CapacityError):
            wire.load(np.ones(3, dtype=np.uint8), offset=2)

    def test_load_does_not_count_events(self):
        wire = Nanowire()
        wire.load(np.ones(8, dtype=np.uint8))
        assert wire.stats.writes == 0


class TestStatsMerge:
    def test_merge_adds_counters(self):
        merged = NanowireStats(1, 2, 3).merge(NanowireStats(10, 20, 30))
        assert (merged.shifts, merged.reads, merged.writes) == (11, 22, 33)
