"""Integration tests: compiled AP programs against the software reference.

These tests exercise the whole stack - ternary layer specs, the compilation
flow (folding, CSE, scheduling, column allocation, code generation), the
functional CAM/AP simulator and the accumulation across input channels - and
check bit-exactness against the NumPy reference convolution.  This is the
mechanism behind the paper's "retaining software accuracy" claim: the RTM-AP
computes exact integers, so it cannot lose accuracy.
"""

import numpy as np
import pytest

from repro.ap.core import AssociativeProcessor
from repro.core.compiler import CompilerConfig, compile_layer, compile_slice
from repro.nn import functional as F
from repro.nn.im2col import im2col
from repro.nn.stats import ConvLayerSpec
from repro.nn.ternary import synthetic_ternary_weights


def simulate_layer_on_ap(spec: ConvLayerSpec, activations: np.ndarray, config: CompilerConfig):
    """Run a full ternary conv layer through compiled AP programs.

    Each input channel's slice program runs on a functional AP (the channel-
    wise DFG phase); the per-channel partial OFMs are then accumulated, which
    emulates the accumulation phase.
    """
    compiled = compile_layer(spec, config, emit_programs=True)
    columns = im2col(
        activations[None, ...],
        (spec.kernel_height, spec.kernel_width),
        spec.stride,
        spec.padding,
    )[0]
    positions = spec.output_positions
    output = np.zeros((spec.out_channels, positions), dtype=np.int64)
    for compiled_slice in compiled.slices:
        channel = compiled_slice.channel_index
        program = compiled_slice.program
        ap = AssociativeProcessor(rows=positions, columns=128)
        inputs = {
            name: columns[channel, int(name[1:]), :]
            for name in program.input_columns
        }
        outputs = ap.run_program(program, inputs, num_rows=positions)
        for name, values in outputs.items():
            output[int(name[1:])] += values
    return compiled, output.reshape(spec.out_channels, spec.output_height, spec.output_width)


def reference_layer(spec: ConvLayerSpec, activations: np.ndarray) -> np.ndarray:
    result = F.conv2d(
        activations[None, ...].astype(np.int64),
        spec.weights.astype(np.int64),
        stride=spec.stride,
        padding=spec.padding,
    )
    return result[0]


class TestCompiledLayerBitExactness:
    @pytest.mark.parametrize("enable_cse", [True, False])
    def test_small_conv_layer_exact(self, small_conv_spec, rng, enable_cse):
        activations = rng.integers(0, 16, size=(small_conv_spec.in_channels, 8, 8))
        config = CompilerConfig(enable_cse=enable_cse, activation_bits=4)
        _, ap_output = simulate_layer_on_ap(small_conv_spec, activations, config)
        reference = reference_layer(small_conv_spec, activations)
        assert np.array_equal(ap_output, reference)

    def test_strided_layer_exact(self, rng):
        weights = synthetic_ternary_weights((6, 3, 3, 3), 0.5, rng=9)
        spec = ConvLayerSpec("strided", weights, 9, 9, stride=2, padding=1)
        activations = rng.integers(0, 16, size=(3, 9, 9))
        _, ap_output = simulate_layer_on_ap(
            spec, activations, CompilerConfig(enable_cse=True, activation_bits=4)
        )
        assert np.array_equal(ap_output, reference_layer(spec, activations))

    def test_8bit_activations_exact(self, rng):
        weights = synthetic_ternary_weights((4, 2, 3, 3), 0.4, rng=4)
        spec = ConvLayerSpec("conv8b", weights, 6, 6, stride=1, padding=1)
        activations = rng.integers(0, 256, size=(2, 6, 6))
        _, ap_output = simulate_layer_on_ap(
            spec, activations, CompilerConfig(enable_cse=True, activation_bits=8)
        )
        assert np.array_equal(ap_output, reference_layer(spec, activations))

    def test_dense_weights_exact(self, rng):
        """Zero sparsity stresses the widest accumulators and longest chains."""
        weights = synthetic_ternary_weights((4, 2, 3, 3), 0.0, rng=5)
        spec = ConvLayerSpec("dense", weights, 5, 5, stride=1, padding=0)
        activations = rng.integers(0, 16, size=(2, 5, 5))
        _, ap_output = simulate_layer_on_ap(
            spec, activations, CompilerConfig(enable_cse=True, activation_bits=4)
        )
        assert np.array_equal(ap_output, reference_layer(spec, activations))

    def test_1x1_convolution_exact(self, rng):
        weights = synthetic_ternary_weights((8, 6, 1, 1), 0.5, rng=6)
        spec = ConvLayerSpec("pointwise", weights, 4, 4, stride=1, padding=0)
        activations = rng.integers(0, 16, size=(6, 4, 4))
        _, ap_output = simulate_layer_on_ap(
            spec, activations, CompilerConfig(enable_cse=True, activation_bits=4)
        )
        assert np.array_equal(ap_output, reference_layer(spec, activations))

    def test_cse_and_unroll_agree(self, small_conv_spec, rng):
        activations = rng.integers(0, 16, size=(small_conv_spec.in_channels, 8, 8))
        _, cse_out = simulate_layer_on_ap(
            small_conv_spec, activations, CompilerConfig(enable_cse=True, activation_bits=4)
        )
        _, unroll_out = simulate_layer_on_ap(
            small_conv_spec, activations, CompilerConfig(enable_cse=False, activation_bits=4)
        )
        assert np.array_equal(cse_out, unroll_out)


class TestFunctionalVsAnalyticalCost:
    def test_phase_counts_match_cost_model(self, paper_eq1_matrix, rng):
        """The analytical cost model agrees with the functional simulator."""
        from repro.ap.cost import program_cost

        config = CompilerConfig(enable_cse=True, activation_bits=4)
        compiled = compile_slice(paper_eq1_matrix, config)
        rows = 12
        ap = AssociativeProcessor(rows=rows, columns=64)
        inputs = {
            name: rng.integers(0, 16, rows) for name in compiled.program.input_columns
        }
        ap.run_program(compiled.program, inputs)
        functional = ap.stats
        analytical = program_cost(compiled.program, rows=rows)
        assert functional.search_phases == analytical.search_phases
        # Write phases can only differ by skipped all-miss passes.
        assert functional.write_phases <= analytical.write_phases

    def test_energy_estimates_same_order(self, paper_eq1_matrix, rng):
        from repro.ap.cost import program_cost
        from repro.rtm.timing import RTMTechnology

        config = CompilerConfig(enable_cse=True, activation_bits=4)
        compiled = compile_slice(paper_eq1_matrix, config)
        rows = 16
        ap = AssociativeProcessor(rows=rows, columns=64)
        inputs = {
            name: rng.integers(0, 16, rows) for name in compiled.program.input_columns
        }
        ap.run_program(compiled.program, inputs)
        technology = RTMTechnology()
        functional_energy = ap.stats.energy_fj(technology)
        analytical_energy = program_cost(compiled.program, rows=rows).energy_fj(technology)
        assert analytical_energy == pytest.approx(functional_energy, rel=0.5)


class TestStructuralPaperNumbers:
    """Cheap structural checks against numbers stated in the paper."""

    def test_inplace_faster_than_outofplace_by_paper_ratio(self):
        from repro.ap.lut import inplace_add_lut, outofplace_add_lut

        assert inplace_add_lut().phases_per_bit / outofplace_add_lut().phases_per_bit == pytest.approx(0.8)

    def test_endurance_paper_interval(self):
        """Rewriting the same column roughly every ~100 ns (Sec. V-C)."""
        from repro.rtm.endurance import estimate_lifetime

        estimate = estimate_lifetime(2.0, 0.8, 256)
        assert 80.0 < estimate.mean_rewrite_interval_ns < 130.0
